"""Tests for the optimal LAP altitude computation (paper dependency [2])."""

import pytest

from repro.channel.altitude import coverage_radius_m, optimal_altitude
from repro.channel.atg import AirToGroundChannel
from repro.channel.presets import DENSE_URBAN, SUBURBAN, URBAN

BUDGET_DB = 110.0


class TestCoverageRadius:
    def test_zero_when_budget_too_tight(self):
        ch = AirToGroundChannel(URBAN)
        assert coverage_radius_m(ch, 300.0, 10.0) == 0.0

    def test_boundary_is_tight(self):
        ch = AirToGroundChannel(URBAN)
        r = coverage_radius_m(ch, 300.0, BUDGET_DB, precision_m=0.5)
        assert ch.pathloss_at_db(r, 300.0) <= BUDGET_DB
        assert ch.pathloss_at_db(r + 2.0, 300.0) > BUDGET_DB

    def test_bigger_budget_bigger_radius(self):
        ch = AirToGroundChannel(URBAN)
        r1 = coverage_radius_m(ch, 300.0, 105.0)
        r2 = coverage_radius_m(ch, 300.0, 115.0)
        assert r2 > r1

    def test_validation(self):
        ch = AirToGroundChannel(URBAN)
        with pytest.raises(ValueError):
            coverage_radius_m(ch, 0.0, BUDGET_DB)
        with pytest.raises(ValueError):
            coverage_radius_m(ch, 100.0, BUDGET_DB, precision_m=0.0)


class TestOptimalAltitude:
    def test_interior_optimum(self):
        """The hallmark result of [2]: the optimal altitude is interior —
        strictly better than both very low and very high hovering."""
        ch = AirToGroundChannel(URBAN)
        best = optimal_altitude(ch, BUDGET_DB, 10.0, 5000.0)
        r_low = coverage_radius_m(ch, 20.0, BUDGET_DB)
        r_high = coverage_radius_m(ch, 4900.0, BUDGET_DB)
        assert best.coverage_radius_m > r_low
        assert best.coverage_radius_m > r_high
        assert 50.0 < best.altitude_m < 4500.0

    def test_optimal_elevation_angle_increases_with_density(self):
        """The invariant [2] reports: the optimal elevation angle
        theta* = atan(h*/R*) grows with environment density — roughly 20°
        suburban, 42° urban, 55° dense-urban (their published values)."""
        import math

        def theta_deg(env):
            best = optimal_altitude(AirToGroundChannel(env), BUDGET_DB)
            return math.degrees(
                math.atan2(best.altitude_m, best.coverage_radius_m)
            )

        t_sub = theta_deg(SUBURBAN)
        t_urb = theta_deg(URBAN)
        t_den = theta_deg(DENSE_URBAN)
        assert t_sub < t_urb < t_den
        assert t_sub == pytest.approx(20.0, abs=5.0)
        assert t_urb == pytest.approx(42.0, abs=6.0)
        assert t_den == pytest.approx(55.0, abs=6.0)

    def test_radius_consistent(self):
        ch = AirToGroundChannel(URBAN)
        best = optimal_altitude(ch, BUDGET_DB)
        assert best.coverage_radius_m == pytest.approx(
            coverage_radius_m(ch, best.altitude_m, BUDGET_DB), rel=0.02
        )

    def test_validation(self):
        ch = AirToGroundChannel(URBAN)
        with pytest.raises(ValueError):
            optimal_altitude(ch, BUDGET_DB, min_altitude_m=100.0,
                             max_altitude_m=50.0)

    def test_paper_scenario_altitude_reasonable(self):
        """The paper hovers at 300 m with R_user = 500 m in an urban
        disaster zone.  For the link budget that yields roughly that
        coverage radius, the optimal altitude should sit within the same
        order of magnitude as 300 m (it scales with the budget)."""
        ch = AirToGroundChannel(URBAN)
        best = optimal_altitude(ch, 98.0)
        assert 200.0 < best.altitude_m < 1200.0
        assert 300.0 < best.coverage_radius_m < 900.0
