"""Tests for the staged SolvePipeline (stages, swapping, error capture)."""

import pytest

from repro import obs
from repro.scenario.pipeline import DEFAULT_STAGES, PipelineState, SolvePipeline
from repro.scenario.registry import AlgorithmEntry, default_registry
from repro.scenario.spec import ScenarioSpec

SPEC = ScenarioSpec(
    name="pipeline-test", scale="small", num_users=200, num_uavs=5,
    seed=9, algorithm="approAlg", algorithm_params={"s": 2},
)


class TestStages:
    def test_default_stage_order(self):
        assert SolvePipeline().stage_names() == (
            "build", "context", "solve", "validate", "report"
        )

    def test_duplicate_stage_names_rejected(self):
        stages = tuple(DEFAULT_STAGES) + (("build", lambda s: s),)
        with pytest.raises(ValueError, match="duplicate"):
            SolvePipeline(stages=stages)

    def test_run_populates_state(self):
        state = SolvePipeline().run(SPEC)
        assert state.ok
        assert state.problem is not None
        assert state.deployment is not None
        assert state.context is not None          # approAlg is context-aware
        assert state.record.algorithm == "approAlg"
        assert state.record.served == state.served > 0
        assert state.report["status"] == "ok"

    def test_context_prebuild_is_lossless(self):
        with_context = SolvePipeline(prebuild_context=True).run(SPEC)
        without = SolvePipeline(prebuild_context=False).run(SPEC)
        assert without.context is None
        assert with_context.deployment.placements == without.deployment.placements
        assert with_context.deployment.assignment == without.deployment.assignment

    def test_context_skipped_for_unaware_algorithms(self):
        state = SolvePipeline().run(
            SPEC.with_overrides(algorithm="MCS", algorithm_params={})
        )
        assert state.ok
        assert state.context is None

    def test_unknown_algorithm_raises_before_any_stage(self):
        with pytest.raises(KeyError, match="Oracle9000"):
            SolvePipeline().run(SPEC.with_overrides(algorithm="Oracle9000"))

    def test_engine_options_gated_by_capabilities(self):
        # workers/bound_prune on a baseline spec must NOT reach the solver
        # (MCS would reject the kwargs).
        state = SolvePipeline().run(SPEC.with_overrides(
            algorithm="MCS", algorithm_params={}, workers=2, bound_prune=True,
        ))
        assert state.ok
        assert "workers" not in state.params
        assert "bound_prune" not in state.params

    def test_bound_prune_forwarded_to_appro(self):
        state = SolvePipeline().run(SPEC.with_overrides(bound_prune=True))
        assert state.ok
        assert state.params["bound_prune"] is True


class TestStageSwap:
    def test_with_stage_replaces_one_stage(self):
        seen = {}

        def spy_report(state: PipelineState) -> PipelineState:
            seen["served"] = state.served
            state.report = {"custom": True}
            return state

        pipeline = SolvePipeline().with_stage("report", spy_report)
        state = pipeline.run(SPEC)
        assert state.report == {"custom": True}
        assert seen["served"] == state.served
        assert state.record is None               # default report replaced

    def test_with_stage_returns_new_pipeline(self):
        base = SolvePipeline()
        swapped = base.with_stage("report", lambda s: s)
        assert base.stages != swapped.stages
        assert base.stage_names() == swapped.stage_names()

    def test_with_stage_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown stage"):
            SolvePipeline().with_stage("deploy", lambda s: s)

    def test_swapped_build_stage_can_inject_problem(self, small_scenario):
        def canned_build(state: PipelineState) -> PipelineState:
            state.problem = small_scenario
            return state

        pipeline = SolvePipeline().with_stage("build", canned_build)
        state = pipeline.run(SPEC)
        assert state.problem is small_scenario
        assert state.ok


class TestErrorCapture:
    @staticmethod
    def _registry_with(name, fn, **flags):
        registry = default_registry()
        registry.register(AlgorithmEntry(name, fn, **flags))
        return registry

    def test_strict_raises(self):
        def boom(problem, **kw):
            raise RuntimeError("kaputt")

        registry = self._registry_with("Boom", boom)
        pipeline = SolvePipeline(registry=registry, strict=True)
        with pytest.raises(RuntimeError, match="kaputt"):
            pipeline.run(SPEC.with_overrides(
                algorithm="Boom", algorithm_params={}
            ))

    def test_non_strict_captures_error(self):
        def boom(problem, **kw):
            raise RuntimeError("kaputt")

        registry = self._registry_with("Boom", boom)
        pipeline = SolvePipeline(registry=registry, strict=False)
        state = pipeline.run(SPEC.with_overrides(
            algorithm="Boom", algorithm_params={}
        ))
        assert state.status == "error"
        assert "kaputt" in state.error
        assert state.record.served == 0
        assert state.record.status == "error"

    def test_non_strict_captures_invalid_deployment(self):
        from repro.network.deployment import Deployment

        def disconnected(problem, **kw):
            # Two far-apart occupied locations: valid assignment-wise but
            # certainly not a connected UAV network.
            return Deployment(
                placements={0: 0, 1: problem.num_locations - 1},
                assignment={},
            )

        registry = self._registry_with("Splitter", disconnected)
        pipeline = SolvePipeline(registry=registry, strict=False)
        state = pipeline.run(SPEC.with_overrides(
            algorithm="Splitter", algorithm_params={}
        ))
        assert state.status == "invalid"
        assert state.record.status == "invalid"

    def test_validate_false_skips_validation(self):
        from repro.network.deployment import Deployment

        def disconnected(problem, **kw):
            return Deployment(
                placements={0: 0, 1: problem.num_locations - 1},
                assignment={},
            )

        registry = self._registry_with("Splitter", disconnected)
        pipeline = SolvePipeline(registry=registry, strict=False)
        state = pipeline.run(SPEC.with_overrides(
            algorithm="Splitter", algorithm_params={}, validate=False,
        ))
        assert state.status == "ok"


class TestObservability:
    def test_legacy_metric_names_preserved(self):
        """The pipeline's solve stage emits the exact metric/span names the
        legacy runner did, so dashboards and traces carry over."""
        obs.reset()
        obs.enable()
        try:
            SolvePipeline().run(SPEC)
            spans = obs.drain_spans()
            metrics = obs.metrics_snapshot()
        finally:
            obs.disable()
            obs.reset()
        names = {span.name for span in spans}
        assert "runner.solve" in names
        assert {"pipeline.build", "pipeline.context", "pipeline.solve",
                "pipeline.validate", "pipeline.report"} <= names
        assert metrics["counters"]["runner.solves"] == 1
        assert "runner.solve_seconds" in metrics["histograms"]
