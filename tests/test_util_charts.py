"""Tests for ASCII charts."""

import pytest

from repro.util.charts import MARKERS, ascii_chart


class TestAsciiChart:
    def test_empty(self):
        assert ascii_chart({}) == "(no data)"
        assert ascii_chart({"a": {}}) == "(no data)"

    def test_dimensions(self):
        chart = ascii_chart({"a": {1: 10, 2: 20}}, width=30, height=8)
        lines = chart.splitlines()
        # 8 grid rows + axis + x labels + legend.
        assert len(lines) == 11
        grid_lines = lines[:8]
        assert all(len(line) == len(grid_lines[0]) for line in grid_lines)

    def test_markers_present(self):
        chart = ascii_chart(
            {"alpha": {1: 10, 2: 20}, "beta": {1: 15, 2: 5}},
            width=30, height=8,
        )
        assert MARKERS[0] in chart
        assert MARKERS[1] in chart
        assert "o=alpha" in chart and "x=beta" in chart

    def test_extremes_on_boundary_rows(self):
        chart = ascii_chart({"a": {1: 0, 2: 100}}, width=20, height=6)
        lines = chart.splitlines()
        assert "o" in lines[0]       # max on top row
        assert "o" in lines[5]       # min on bottom row
        assert lines[0].strip().startswith("100")

    def test_flat_series(self):
        chart = ascii_chart({"a": {1: 5, 2: 5, 3: 5}})
        assert "o" in chart  # no division-by-zero on zero span

    def test_categorical_x(self):
        chart = ascii_chart({"a": {"low": 1, "high": 3}})
        assert "low" in chart and "high" in chart

    def test_title(self):
        chart = ascii_chart({"a": {1: 1}}, title="hello")
        assert chart.splitlines()[0] == "hello"

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_chart({"a": {1: 1}}, width=5)
        with pytest.raises(ValueError):
            ascii_chart({"a": {1: 1}}, height=2)
