"""Checkpoint mechanics: range arithmetic, identity keys, resume rules."""

from __future__ import annotations

import json

import pytest

from repro.core.checkpoint import (
    CHECKPOINT_FORMAT,
    CheckpointConfig,
    CheckpointError,
    SolveCheckpoint,
    covered_units,
    merge_ranges,
    missing_ranges,
    solve_run_key,
    solve_work_key,
)

# -- range arithmetic --------------------------------------------------------


def test_merge_ranges_sorts_coalesces_and_drops_empty():
    assert merge_ranges([(5, 9), (0, 3), (3, 5), (9, 9), (20, 25)]) == [
        (0, 9), (20, 25)
    ]
    assert merge_ranges([]) == []
    assert merge_ranges([(4, 2)]) == []


def test_missing_ranges_is_the_exact_complement():
    completed = [(2, 4), (6, 8)]
    assert missing_ranges(10, completed) == [(0, 2), (4, 6), (8, 10)]
    assert missing_ranges(10, []) == [(0, 10)]
    assert missing_ranges(10, [(0, 10)]) == []
    # Ranges beyond total are clamped away.
    assert missing_ranges(5, [(0, 3), (7, 9)]) == [(3, 5)]


@pytest.mark.parametrize("total", [1, 7, 64, 100])
def test_completed_plus_missing_cover_everything(total):
    completed = [(1, 3), (10, 12), (30, 80), (2, 5)]
    units = covered_units([(lo, min(hi, total)) for lo, hi in completed
                           if lo < total])
    gaps = missing_ranges(total, completed)
    assert units + sum(hi - lo for lo, hi in gaps) == total


def test_config_validation():
    with pytest.raises(ValueError, match="every_chunks"):
        CheckpointConfig(path="x.json", every_chunks=0)
    with pytest.raises(ValueError, match="every_subsets"):
        CheckpointConfig(path="x.json", every_subsets=0)


# -- identity keys -----------------------------------------------------------


class _FakeUAV:
    def __init__(self, capacity):
        self.capacity = capacity


class _FakeProblem:
    num_users = 100
    num_locations = 9
    num_uavs = 3
    fleet = [_FakeUAV(30), _FakeUAV(40), _FakeUAV(50)]


def _run_key(**overrides):
    kw = dict(
        problem=_FakeProblem(), pool=(0, 1, 2), eval_kw={"gain_mode": "fast"},
        bound_prune=False, external_key=None,
    )
    kw.update(overrides)
    return solve_run_key(**kw)


def test_run_key_sensitive_to_every_identity_input():
    base = _run_key()
    assert base == _run_key(), "deterministic"
    assert base != _run_key(pool=(0, 1, 3))
    assert base != _run_key(eval_kw={"gain_mode": "exact"})
    assert base != _run_key(bound_prune=True)
    assert base != _run_key(external_key="scenario-x")


def test_work_key_separates_levels_and_domains():
    run = _run_key()
    assert solve_work_key(run, 2, "raw", 84) == solve_work_key(
        run, 2, "raw", 84
    )
    assert solve_work_key(run, 2, "raw", 84) != solve_work_key(
        run, 3, "raw", 84
    )
    assert solve_work_key(run, 2, "raw", 84) != solve_work_key(
        run, 2, "surviving", 84
    )
    assert solve_work_key(run, 2, "raw", 84) != solve_work_key(
        run, 2, "raw", 85
    )


# -- SolveCheckpoint lifecycle -----------------------------------------------


def _fresh(tmp_path, resume=False, run_key="rk", **config_kw):
    config = CheckpointConfig(
        path=tmp_path / "ck.json", resume=resume, **config_kw
    )
    return SolveCheckpoint(config, run_key)


def test_round_trip_restores_ranges_best_and_counts(tmp_path):
    ck = _fresh(tmp_path)
    ck.enter_level(2, "surviving", 50)
    ck.mark_range(0, 10)
    ck.mark_range(20, 30)
    ck.set_best((17, {0: 3, 1: 5}, (3, 5)))
    ck.record_counts(pruned=4, evaluated=14, infeasible=2, bound_skipped=0)
    ck.flush()

    res = _fresh(tmp_path, resume=True)
    res.enter_level(2, "surviving", 50)
    assert res.resumed
    assert res.completed == [(0, 10), (20, 30)]
    assert res.best == (17, {0: 3, 1: 5}, (3, 5))
    assert res.counts == {
        "pruned": 4, "evaluated": 14, "infeasible": 2, "bound_skipped": 0
    }
    assert res.resumed_chunks == 2
    assert res.resumed_units == 20
    assert missing_ranges(res.total, res.completed) == [(10, 20), (30, 50)]


def test_run_key_mismatch_is_ignored_not_fatal(tmp_path):
    ck = _fresh(tmp_path, run_key="old-work")
    ck.enter_level(2, "raw", 10)
    ck.mark_range(0, 10)
    ck.flush()

    res = _fresh(tmp_path, resume=True, run_key="new-work")
    assert res.mismatched
    res.enter_level(2, "raw", 10)
    assert not res.resumed, "a stale checkpoint must never restore ranges"
    assert res.completed == []


def test_work_key_mismatch_starts_level_fresh(tmp_path):
    ck = _fresh(tmp_path)
    ck.enter_level(2, "raw", 10)
    ck.mark_range(0, 5)
    ck.flush()

    res = _fresh(tmp_path, resume=True)
    res.enter_level(3, "raw", 10)   # same run, different level
    assert not res.resumed
    assert res.completed == []


def test_exhausted_levels_round_trip(tmp_path):
    ck = _fresh(tmp_path)
    ck.enter_level(3, "raw", 10)
    ck.mark_exhausted(3)

    res = _fresh(tmp_path, resume=True)
    assert res.is_exhausted(3)
    assert not res.is_exhausted(2)


def test_foreign_file_raises(tmp_path):
    path = tmp_path / "ck.json"
    path.write_text(json.dumps({"kind": "something-else"}))
    with pytest.raises(CheckpointError, match="not a solve checkpoint"):
        SolveCheckpoint(CheckpointConfig(path=path, resume=True), "rk")


def test_future_format_raises(tmp_path):
    path = tmp_path / "ck.json"
    payload = {"kind": "solve-checkpoint", "format": CHECKPOINT_FORMAT + 1}
    path.write_text(json.dumps(payload))
    with pytest.raises(CheckpointError, match="unsupported checkpoint format"):
        SolveCheckpoint(CheckpointConfig(path=path, resume=True), "rk")


def test_corrupt_file_raises(tmp_path):
    path = tmp_path / "ck.json"
    path.write_text("{not json")
    with pytest.raises(CheckpointError, match="cannot read"):
        SolveCheckpoint(CheckpointConfig(path=path, resume=True), "rk")


def test_missing_file_starts_fresh(tmp_path):
    res = _fresh(tmp_path, resume=True)
    assert not res.mismatched
    res.enter_level(2, "raw", 10)
    assert not res.resumed


def test_flush_cadence_chunks_vs_subsets(tmp_path):
    # every_chunks=1: each pool chunk flushes; serial per-subset marks
    # (chunk=False) only flush at the every_subsets cadence.
    ck = _fresh(tmp_path, every_chunks=1, every_subsets=10)
    ck.enter_level(2, "raw", 100)
    for i in range(5):
        ck.mark_range(i, i + 1, chunk=False)
        ck.maybe_flush()
    assert ck.writes == 0, "5 subsets < every_subsets=10: no flush yet"
    for i in range(5, 10):
        ck.mark_range(i, i + 1, chunk=False)
        ck.maybe_flush()
    assert ck.writes == 1
    ck.mark_range(10, 20, chunk=True)
    ck.maybe_flush()
    assert ck.writes == 2, "a pool chunk flushes at every_chunks=1"


def test_empty_range_is_a_no_op(tmp_path):
    ck = _fresh(tmp_path)
    ck.enter_level(2, "raw", 10)
    ck.mark_range(5, 5)
    assert ck.completed == []
