"""Tests for repro.geometry.area."""

import pytest

from repro.geometry.area import DisasterArea
from repro.geometry.point import Point2D


class TestDisasterArea:
    def test_ground_area(self):
        assert DisasterArea(3000, 2000).ground_area == 6_000_000

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            DisasterArea(0, 100)
        with pytest.raises(ValueError, match="positive"):
            DisasterArea(100, -5)
        with pytest.raises(ValueError, match="positive"):
            DisasterArea(100, 100, height=0)

    def test_contains_ground(self):
        area = DisasterArea(100, 50)
        assert area.contains_ground(Point2D(0, 0))
        assert area.contains_ground(Point2D(100, 50))
        assert not area.contains_ground(Point2D(100.1, 10))
        assert not area.contains_ground(Point2D(-0.1, 10))


class TestHoveringGrid:
    def test_paper_dimensions(self):
        # 3 km x 3 km with 50 m cells: m = 60 * 60 = 3600 (Section II-A).
        grid = DisasterArea(3000, 3000).hovering_grid(50, 300)
        assert grid.size == 3600
        assert grid.cols == 60 and grid.rows == 60

    def test_centers_are_cell_centers(self):
        grid = DisasterArea(1000, 500).hovering_grid(500, 300)
        assert grid.size == 2
        c0, c1 = grid.centers
        assert (c0.x, c0.y, c0.z) == (250.0, 250.0, 300.0)
        assert (c1.x, c1.y, c1.z) == (750.0, 250.0, 300.0)

    def test_row_major_indexing(self):
        grid = DisasterArea(1500, 1000).hovering_grid(500, 300)
        assert grid.cols == 3 and grid.rows == 2
        assert grid.index_of(2, 1) == 5
        assert grid.cell_of(5) == (2, 1)
        assert grid.cell_of(0) == (0, 0)

    def test_index_roundtrip(self):
        grid = DisasterArea(2000, 1500).hovering_grid(500, 250)
        for j in range(grid.size):
            col, row = grid.cell_of(j)
            assert grid.index_of(col, row) == j

    def test_containing_cell(self):
        grid = DisasterArea(1000, 1000).hovering_grid(500, 300)
        assert grid.containing_cell(Point2D(10, 10)) == 0
        assert grid.containing_cell(Point2D(990, 990)) == 3
        # Boundary points clamp into the last cell.
        assert grid.containing_cell(Point2D(1000, 1000)) == 3

    def test_containing_cell_outside_raises(self):
        grid = DisasterArea(1000, 1000).hovering_grid(500, 300)
        with pytest.raises(ValueError, match="outside"):
            grid.containing_cell(Point2D(1001, 10))

    def test_indivisible_side_rejected(self):
        with pytest.raises(ValueError, match="divisible"):
            DisasterArea(1000, 1000).hovering_grid(300, 300)

    def test_altitude_outside_airspace_rejected(self):
        area = DisasterArea(1000, 1000, height=500)
        with pytest.raises(ValueError, match="airspace"):
            area.hovering_grid(500, 501)
        with pytest.raises(ValueError, match="airspace"):
            area.hovering_grid(500, 0)

    def test_cell_of_out_of_range(self):
        grid = DisasterArea(1000, 1000).hovering_grid(500, 300)
        with pytest.raises(IndexError):
            grid.cell_of(4)
        with pytest.raises(IndexError):
            grid.index_of(2, 0)
