"""Tests for channel allocation and its effect on the interference audit."""

import pytest

from repro.channel.interference import audit_interference
from repro.core.approx import appro_alg
from repro.core.assignment import optimal_assignment
from repro.network.deployment import Deployment
from repro.network.spectrum import (
    ChannelPlan,
    allocate_channels,
    interference_graph,
)
from tests.conftest import make_line_instance


@pytest.fixture
def chain_problem():
    return make_line_instance(
        num_locations=5, users_per_location=2,
        capacities=(2, 2, 2, 2, 2),
    )


class TestInterferenceGraph:
    def test_chain_coupling(self, chain_problem):
        dep = Deployment(placements={k: k for k in range(5)})
        # Default coupling range = 2 x 500 m: locations within 1000 m
        # couple -> neighbours and next-neighbours on the 500 m chain.
        adj = interference_graph(chain_problem, dep)
        assert adj[0] == {1, 2}
        assert adj[2] == {0, 1, 3, 4}

    def test_custom_range(self, chain_problem):
        dep = Deployment(placements={k: k for k in range(5)})
        adj = interference_graph(chain_problem, dep, coupling_range_m=600.0)
        assert adj[0] == {1}

    def test_negative_range_rejected(self, chain_problem):
        dep = Deployment(placements={0: 0})
        with pytest.raises(ValueError):
            interference_graph(chain_problem, dep, coupling_range_m=-1.0)


class TestAllocateChannels:
    def test_proper_colouring(self, chain_problem):
        dep = Deployment(placements={k: k for k in range(5)})
        plan = allocate_channels(chain_problem, dep)
        adj = interference_graph(chain_problem, dep)
        for k, neighbours in adj.items():
            for n in neighbours:
                assert plan.channels[k] != plan.channels[n]

    def test_channel_count_bounded_by_degree(self, chain_problem):
        dep = Deployment(placements={k: k for k in range(5)})
        plan = allocate_channels(chain_problem, dep)
        adj = interference_graph(chain_problem, dep)
        max_degree = max(len(n) for n in adj.values())
        assert plan.num_channels <= max_degree + 1

    def test_isolated_uavs_one_channel(self, chain_problem):
        dep = Deployment(placements={0: 0, 1: 4})  # 2 km apart
        plan = allocate_channels(chain_problem, dep,
                                 coupling_range_m=600.0)
        assert plan.num_channels == 1

    def test_max_channels_enforced(self, chain_problem):
        dep = Deployment(placements={k: k for k in range(5)})
        with pytest.raises(ValueError, match="channels"):
            allocate_channels(chain_problem, dep, max_channels=1)

    def test_empty_deployment(self, chain_problem):
        plan = allocate_channels(chain_problem, Deployment.empty())
        assert plan.num_channels == 0


class TestAuditWithChannels:
    def test_channels_recover_link_quality(self, chain_problem):
        """Orthogonalising coupled neighbours must strictly reduce the
        mean SINR loss vs reuse-1."""
        placements = {k: k for k in range(5)}
        dep = optimal_assignment(
            chain_problem.graph, chain_problem.fleet, placements
        )
        reuse1 = audit_interference(chain_problem, dep)
        plan = allocate_channels(chain_problem, dep)
        orthogonal = audit_interference(chain_problem, dep,
                                        channel_plan=plan)
        assert orthogonal.mean_sinr_loss_db < reuse1.mean_sinr_loss_db
        assert orthogonal.still_satisfied >= reuse1.still_satisfied

    def test_single_channel_plan_equals_reuse1(self, chain_problem):
        placements = {k: k for k in range(3)}
        dep = optimal_assignment(
            chain_problem.graph, chain_problem.fleet, placements
        )
        all_same = ChannelPlan(channels={k: 0 for k in placements},
                               num_channels=1)
        reuse1 = audit_interference(chain_problem, dep)
        same = audit_interference(chain_problem, dep, channel_plan=all_same)
        assert same.mean_sinr_loss_db == pytest.approx(
            reuse1.mean_sinr_loss_db
        )

    def test_real_deployment(self, small_scenario):
        result = appro_alg(small_scenario, s=2, gain_mode="fast")
        plan = allocate_channels(small_scenario, result.deployment)
        audit = audit_interference(small_scenario, result.deployment,
                                   channel_plan=plan)
        assert audit.served == result.served
        assert plan.num_channels >= 1