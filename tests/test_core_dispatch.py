"""The fault-tolerant chunk dispatcher and its slicing invariants."""

from __future__ import annotations

import os

import pytest

from repro.core.dispatch import ChunkDispatcher, FaultPolicy, chunk_slices

# -- chunk_slices properties -------------------------------------------------


@pytest.mark.parametrize("n", [0, -1, -100])
def test_degenerate_n_yields_no_chunks(n):
    assert chunk_slices(n, 4) == []


def test_degenerate_workers_yield_no_chunks():
    assert chunk_slices(100, 0) == []


@pytest.mark.parametrize("n", [1, 2, 3, 7, 63, 64, 65, 100, 257, 1000])
@pytest.mark.parametrize("workers", [1, 2, 3, 4, 8, 16])
def test_slices_partition_exactly_with_no_empty_chunk(n, workers):
    slices = chunk_slices(n, workers)
    assert all(hi > lo for lo, hi in slices), "empty chunk emitted"
    # Exact ordered partition of [0, n).
    cursor = 0
    for lo, hi in slices:
        assert lo == cursor
        cursor = hi
    assert cursor == n
    # Every worker gets something to do on small sweeps.
    assert len(slices) >= min(n, workers)
    # Bounded chunk size keeps progress/checkpoint granularity sane.
    assert all(hi - lo <= 64 for lo, hi in slices)


# -- FaultPolicy -------------------------------------------------------------


def test_policy_backoff_is_exponential_and_capped():
    policy = FaultPolicy(backoff_initial_s=0.1, backoff_max_s=0.5)
    assert policy.backoff_s(0) == pytest.approx(0.1)
    assert policy.backoff_s(1) == pytest.approx(0.2)
    assert policy.backoff_s(2) == pytest.approx(0.4)
    assert policy.backoff_s(3) == pytest.approx(0.5)
    assert policy.backoff_s(10) == pytest.approx(0.5)


def test_policy_validation():
    with pytest.raises(ValueError, match="max_attempts"):
        FaultPolicy(max_attempts=0)
    with pytest.raises(ValueError, match="backoff"):
        FaultPolicy(backoff_initial_s=-1.0)


# -- dispatcher (real process pools; guarded) --------------------------------

# Worker entry points must be module-level to pickle.


def _sum_chunk(chunk_id, lo, hi, attempt):
    return sum(range(lo, hi))


def _flaky_chunk(chunk_id, lo, hi, attempt):
    if chunk_id == 1 and attempt == 0:
        raise RuntimeError("transient failure, first attempt only")
    return sum(range(lo, hi))


def _poison_chunk(chunk_id, lo, hi, attempt):
    if chunk_id == 0:
        raise RuntimeError("poisoned on every attempt")
    return sum(range(lo, hi))


def _killer_chunk(chunk_id, lo, hi, attempt):
    if chunk_id == 2 and attempt == 0:
        os._exit(23)
    return sum(range(lo, hi))


def _chunks(n=40, workers=4):
    return [
        (i, (lo, hi)) for i, (lo, hi) in enumerate(chunk_slices(n, workers))
    ]


def _serial(chunk_id, args):
    lo, hi = args
    return sum(range(lo, hi))


FAST = FaultPolicy(backoff_initial_s=0.0, backoff_max_s=0.0)


@pytest.mark.timeout_guard(120)
def test_dispatcher_clean_run():
    chunks = _chunks()
    got = {}
    stats = ChunkDispatcher(_sum_chunk, workers=2, policy=FAST).run(
        chunks, lambda cid, res: got.__setitem__(cid, res), _serial
    )
    assert got == {cid: _serial(cid, args) for cid, args in chunks}
    assert stats.chunks == len(chunks)
    assert stats.retries == 0
    assert stats.chunks_quarantined == 0


@pytest.mark.timeout_guard(120)
def test_dispatcher_retries_transient_exception():
    chunks = _chunks()
    got = {}
    submissions = []
    stats = ChunkDispatcher(_flaky_chunk, workers=2, policy=FAST).run(
        chunks, lambda cid, res: got.__setitem__(cid, res), _serial,
        on_submit=lambda cid, attempt: submissions.append((cid, attempt)),
    )
    assert got == {cid: _serial(cid, args) for cid, args in chunks}
    assert stats.retries >= 1
    assert stats.chunks_redispatched >= 1
    assert stats.chunks_quarantined == 0
    assert (1, 1) in submissions, "chunk 1 must be re-submitted"


@pytest.mark.timeout_guard(120)
def test_dispatcher_quarantines_poison_chunk():
    chunks = _chunks()
    got = {}
    policy = FaultPolicy(
        max_attempts=2, backoff_initial_s=0.0, backoff_max_s=0.0
    )
    stats = ChunkDispatcher(_poison_chunk, workers=2, policy=policy).run(
        chunks, lambda cid, res: got.__setitem__(cid, res), _serial
    )
    # Exactly once per chunk, poison included (via the serial fallback).
    assert got == {cid: _serial(cid, args) for cid, args in chunks}
    assert stats.chunks_quarantined >= 1
    assert stats.retries >= policy.max_attempts


@pytest.mark.timeout_guard(120)
def test_dispatcher_survives_worker_kill():
    chunks = _chunks()
    got = {}
    stats = ChunkDispatcher(_killer_chunk, workers=2, policy=FAST).run(
        chunks, lambda cid, res: got.__setitem__(cid, res), _serial
    )
    assert got == {cid: _serial(cid, args) for cid, args in chunks}
    assert stats.pool_respawns >= 1
    assert stats.chunks_redispatched >= 1


@pytest.mark.timeout_guard(120)
def test_boundary_abort_propagates():
    class Abort(RuntimeError):
        pass

    def boundary():
        raise Abort("stop right there")

    with pytest.raises(Abort):
        ChunkDispatcher(_sum_chunk, workers=2, policy=FAST).run(
            _chunks(), lambda cid, res: None, _serial, boundary=boundary
        )


def test_dispatcher_workers_validated():
    with pytest.raises(ValueError, match="workers"):
        ChunkDispatcher(_sum_chunk, workers=0)
