"""Resume at the orchestration layers: batch ledger, sweep journal,
pipeline checkpoint identity."""

from __future__ import annotations

import pytest

from repro import obs
from repro.scenario import BatchRunner, ScenarioSpec, SolvePipeline
from repro.sim.experiments import fig5_sweep


def _specs(n=3):
    return [
        ScenarioSpec(
            name=f"spec{i}", scale="small", num_users=60 + 10 * i,
            num_uavs=3, seed=i, algorithm="approAlg",
            algorithm_params={"s": 2, "gain_mode": "fast"},
        )
        for i in range(n)
    ]


@pytest.fixture
def counters():
    obs.reset()
    obs.enable()
    yield lambda: obs.metrics_snapshot().get("counters", {})
    obs.disable()
    obs.reset()


def test_batch_resume_skips_recorded_specs(tmp_path, counters):
    specs = _specs()
    first = BatchRunner(checkpoint_dir=tmp_path).run(specs)
    assert (tmp_path / "batch-ledger.json").exists()

    second = BatchRunner(checkpoint_dir=tmp_path, resume=True).run(specs)
    assert second.specs_skipped == len(specs)
    assert all(item.resumed for item in second.items)
    assert [i.served for i in second.items] == [i.served for i in first.items]
    assert [i.record.status for i in second.items] == ["ok"] * len(specs)
    assert counters().get("resume.specs_skipped", 0) == len(specs)


def test_batch_different_spec_list_never_cross_resumes(tmp_path):
    BatchRunner(checkpoint_dir=tmp_path).run(_specs(2))
    result = BatchRunner(checkpoint_dir=tmp_path, resume=True).run(_specs(3))
    assert result.specs_skipped == 0, (
        "the ledger is fingerprinted on the full spec list; a different "
        "batch must start fresh"
    )


def test_batch_without_resume_recomputes(tmp_path):
    specs = _specs(2)
    BatchRunner(checkpoint_dir=tmp_path).run(specs)
    again = BatchRunner(checkpoint_dir=tmp_path).run(specs)
    assert again.specs_skipped == 0


def test_sweep_resume_skips_points(tmp_path, counters):
    kwargs = dict(ns=(40, 60), num_uavs=4, scale="small",
                  checkpoint_dir=tmp_path)
    first = fig5_sweep(**kwargs)
    second = fig5_sweep(**kwargs, resume=True)
    key = lambda result: [            # noqa: E731 - tiny local projection
        (v, rec.algorithm, rec.served) for v, rec in result.records
    ]
    assert key(second) == key(first)
    assert counters().get("resume.points_skipped", 0) == len(first.records)


def test_pipeline_spec_checkpoint_identity(tmp_path):
    pipeline = SolvePipeline(checkpoint_dir=tmp_path)
    a, b, c = _specs(3)[0], _specs(3)[0], _specs(3)[1]
    config_a = pipeline.spec_checkpoint(a)
    assert config_a is not None
    assert pipeline.spec_checkpoint(b).key == config_a.key
    assert pipeline.spec_checkpoint(c).key != config_a.key
    # Non-checkpointable algorithms get no config.
    mcs = ScenarioSpec(
        name="mcs", scale="small", num_users=60, num_uavs=3, seed=0,
        algorithm="MCS",
    )
    assert pipeline.spec_checkpoint(mcs) is None
    # No checkpoint_dir, no config.
    assert SolvePipeline().spec_checkpoint(a) is None


def test_pipeline_checkpoint_stays_out_of_the_record(tmp_path):
    pipeline = SolvePipeline(checkpoint_dir=tmp_path)
    state = pipeline.run(_specs(1)[0])
    assert state.ok
    assert "checkpoint" not in state.record.params
