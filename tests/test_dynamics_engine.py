"""Tests for the unified dynamic mission engine."""

import pytest

from repro.dynamics import DynamicSpec, run_dynamic


def make_spec(**overrides) -> DynamicSpec:
    base = dict(
        name="engine-t", scale="small", num_users=40, num_uavs=4, seed=11,
        algorithm="approAlg",
        algorithm_params={"s": 1, "gain_mode": "fast",
                          "max_anchor_candidates": 6},
        duration_s=240.0, epoch_s=60.0, arrival_rate_per_s=0.05,
        mean_dwell_s=200.0, mobility_sigma_m=20.0,
    )
    base.update(overrides)
    return DynamicSpec(**base)


def run_signature(result):
    """Everything that must be deterministic (wall latencies excluded)."""
    return (
        result.timeline,
        [(e.t_s, e.trigger, e.served, e.num_placed) for e in result.epochs],
        result.arrivals, result.departures, result.faults, result.rotations,
        result.final_placements,
    )


class TestDeterminism:
    def test_same_seed_same_run(self):
        spec = make_spec()
        a = run_dynamic(spec)
        b = run_dynamic(spec)
        assert run_signature(a) == run_signature(b)

    def test_different_seed_different_events(self):
        a = run_dynamic(make_spec())
        b = run_dynamic(make_spec(seed=12))
        assert a.timeline != b.timeline


class TestTimeline:
    def test_timeline_spans_mission(self):
        spec = make_spec()
        result = run_dynamic(spec)
        times = [t for t, _, _ in result.timeline]
        assert times[0] == 0.0
        assert times[-1] == spec.duration_s
        assert times == sorted(times)

    def test_coverage_series_bounded(self):
        result = run_dynamic(make_spec())
        assert all(0.0 <= c <= 1.0 for c in result.coverage_series)
        assert 0.0 <= result.min_coverage <= result.mean_coverage <= 1.0
        assert result.final_served == result.timeline[-1][1]

    def test_churn_happened(self):
        result = run_dynamic(make_spec())
        assert result.arrivals > 0
        # Every tracked user either got served at some point or is counted
        # unserved.
        assert result.unserved_users >= 0
        assert all(t >= 0 for t in result.time_to_serve_s)

    def test_to_dict_is_json_shaped(self):
        import json

        data = run_dynamic(make_spec()).to_dict()
        assert json.loads(json.dumps(data)) == data
        assert data["resolves"] == len(run_dynamic(make_spec()).epochs)


class TestPolicies:
    def test_periodic_resolves_every_epoch(self):
        spec = make_spec(resolve_policy="periodic")
        result = run_dynamic(spec)
        epoch_solves = [e for e in result.epochs if e.trigger == "epoch"]
        # Four epoch ticks in 240 s at 60 s cadence; the tick at t=240
        # still fires (drain is inclusive of the horizon).
        assert len(epoch_solves) == 4
        assert result.epochs[0].trigger == "initial"

    def test_event_policy_without_faults_never_resolves(self):
        spec = make_spec(resolve_policy="event")
        result = run_dynamic(spec)
        assert [e.trigger for e in result.epochs] == ["initial"]

    def test_drift_resolves_at_most_periodic(self):
        periodic = run_dynamic(make_spec(resolve_policy="periodic"))
        drift = run_dynamic(
            make_spec(resolve_policy="drift", drift_threshold=0.9)
        )
        # A near-impossible drift threshold re-solves strictly less often.
        assert len(drift.epochs) <= len(periodic.epochs)


class TestStaticDegenerate:
    def test_zeroed_knobs_static_mission(self):
        spec = make_spec(
            arrival_rate_per_s=0.0, mobility_sigma_m=0.0,
            hotspot_drift_mps=0.0,
        )
        result = run_dynamic(spec)
        assert result.arrivals == 0
        assert result.departures == 0
        # Nothing moves, so coverage is flat across the whole mission.
        assert len(set(result.coverage_series)) == 1


class TestFaults:
    def test_crash_removes_uav(self):
        spec = make_spec(num_crashes=2, resolve_policy="event")
        result = run_dynamic(spec)
        assert result.faults == 2
        fault_solves = [e for e in result.epochs if e.trigger == "fault"]
        assert fault_solves
        # Crashed UAVs never appear in the final placements.
        assert len(result.final_placements) <= spec.num_uavs - 2

    def test_fault_run_deterministic(self):
        spec = make_spec(num_crashes=1, num_links=1)
        assert run_signature(run_dynamic(spec)) \
            == run_signature(run_dynamic(spec))


class TestRotation:
    def test_spare_uavs_rotate(self):
        # 8 UAVs for 8 users at capacity 20 places only a few, leaving
        # spares for relief sorties; endurance is far below the horizon.
        spec = make_spec(
            num_users=8, num_uavs=8, capacity_min=20, capacity_max=20,
            duration_s=7200.0, epoch_s=3600.0, arrival_rate_per_s=0.0,
            mobility_sigma_m=0.0, hotspot_drift_mps=0.0,
            recharge_s=300.0,
        )
        result = run_dynamic(spec)
        assert result.rotations > 0
        # A swap replaces the UAV index but keeps the position, so the
        # placed set stays a valid deployment over distinct locations.
        locs = list(result.final_placements.values())
        assert len(locs) == len(set(locs))

    def test_no_recharge_no_rotation(self):
        result = run_dynamic(make_spec(recharge_s=None))
        assert result.rotations == 0


class TestRelocation:
    def test_transit_delays_adoption(self):
        fast = run_dynamic(make_spec(relocation_speed_mps=1000.0))
        slow = run_dynamic(make_spec(relocation_speed_mps=0.5))
        # At 0.5 m/s most transitions never complete inside the mission,
        # so the slow run adopts fewer (or equal) re-plans; both runs are
        # still well-formed.
        assert fast.final_placements
        assert slow.final_placements
        assert len(slow.epochs) == len(fast.epochs)


class TestWarmOverride:
    def test_warm_flag_recorded(self):
        spec = make_spec()
        warm = run_dynamic(spec, warm=True)
        cold = run_dynamic(spec, warm=False)
        assert warm.warm is True
        assert cold.warm is False
        assert all(
            e.warm for e in warm.epochs if e.trigger != "initial"
        )
        assert not any(e.warm for e in cold.epochs)

    def test_unknown_algorithm_raises(self):
        with pytest.raises(KeyError):
            run_dynamic(make_spec(algorithm="definitely-not-real"))
