"""Aggregation oracle pass: demand-cell solves vs their per-user twins.

The scale layer (:mod:`repro.workload.aggregate`) promises two things,
checked here on ~50 seeded instances:

* **degenerate bit-identity** — aggregating with ``cell_size_m=None``
  builds one singleton cell per user, and ``appro_alg`` over that cell
  problem must reproduce the per-user run *exactly*: same served count,
  same placements, same user->UAV assignment.  The padded coverage test
  degenerates to the per-user test bit-for-bit (radius zero adds ``0.0``
  in IEEE arithmetic), and the flow/assignment engines dispatch back to
  the unit-demand paths, so any drift is a real dispatch bug;
* **conservative soundness** — with real (coarse) cells the padded
  coverage test only *under*-approximates reachability, so any feasible
  cell deployment induces a feasible per-user assignment of the same
  size.  Served units can therefore never exceed the brute-force
  per-user optimum, demand is conserved (``sum(demands) == num_users``),
  and the independent cell validator accepts the output.

The per-user run and oracle value are cached per instance so all checks
pay for one enumeration.
"""

from __future__ import annotations

import pytest

from repro.core.approx import appro_alg
from repro.core.exact import exact_optimum_value
from repro.network.deployment import CellDeployment, Deployment
from repro.network.validate import validate_cell_deployment
from repro.workload.aggregate import aggregate_problem
from repro.workload.scenarios import paper_scenario
from tests.conftest import make_line_instance

# ~50 instances, mirroring tests/test_differential_oracle.py: line
# instances are deterministic geometries; "small"-scale paper scenarios
# are seeded random draws on the 9-location grid (K <= 4 keeps the
# oracle enumeration cheap).
LINE_SPECS = [
    # (num_locations, users_per_location, capacities)
    (4, 3, (3, 3, 3)),
    (4, (1, 5, 2, 4), (4, 4)),
    (4, (6, 1, 1, 6), (6, 2, 2)),
    (5, 2, (2, 2, 2)),
    (5, 4, (4, 4, 4)),
    (5, (5, 1, 3, 1, 5), (5, 3, 1)),
    (5, 3, (1, 2, 3, 4)),
    (6, 2, (2, 2, 2)),
    (6, (4, 1, 4, 1, 4, 1), (4, 4, 4)),
    (6, 3, (3, 1, 3, 1)),
]

SMALL_SPECS = [
    # (num_users, num_uavs, seed)
    *[(35, 3, seed) for seed in range(10)],
    *[(50, 3, seed) for seed in range(10, 20)],
    *[(45, 4, seed) for seed in range(20, 28)],
    *[(60, 4, seed) for seed in range(28, 36)],
    *[(25, 2, seed) for seed in range(36, 40)],
]

ALL_SPECS = [("line", spec) for spec in LINE_SPECS] + [
    ("small", spec) for spec in SMALL_SPECS
]

# Coarse cell edge: large enough to merge users (line instances pack
# users 5 m apart; small scenarios live on a 1500 m square) while small
# enough that cells stay plausibly coverable.
COARSE_CELL_M = 200.0


def _build(kind: str, spec: tuple):
    if kind == "line":
        m, users, caps = spec
        return make_line_instance(
            num_locations=m, users_per_location=users, capacities=caps
        )
    n, k, seed = spec
    return paper_scenario(num_users=n, num_uavs=k, scale="small", seed=seed)


@pytest.fixture(scope="module")
def oracle_cache():
    """(kind, spec) -> (problem, per-user appro result, OPT_connected)."""
    cache: dict = {}

    def get(kind: str, spec: tuple):
        key = (kind, spec)
        if key not in cache:
            problem = _build(kind, spec)
            s = min(2, problem.num_uavs)
            cache[key] = (
                problem,
                appro_alg(problem, s=s),
                exact_optimum_value(problem),
            )
        return cache[key]

    return get


@pytest.mark.parametrize("kind,spec", ALL_SPECS)
def test_singleton_cells_bit_identical(kind, spec, oracle_cache):
    problem, base, _opt = oracle_cache(kind, spec)
    cell_problem = aggregate_problem(problem)  # cell_size_m=None: singletons
    demands = cell_problem.graph.cell_demands
    assert demands.size == problem.num_users
    assert int(demands.max(initial=0)) <= 1
    s = min(2, problem.num_uavs)
    result = appro_alg(cell_problem, s=s)
    # Singleton aggregation must be a *degenerate* path: the solver has
    # to return a plain per-user Deployment, identical in every field.
    assert isinstance(result.deployment, Deployment)
    assert result.served == base.served, (
        f"singleton cells served {result.served} != per-user "
        f"{base.served} on {kind} {spec}"
    )
    assert result.deployment.placements == base.deployment.placements
    assert result.deployment.assignment == base.deployment.assignment


@pytest.mark.parametrize("kind,spec", ALL_SPECS)
def test_coarse_cells_sound_and_conserving(kind, spec, oracle_cache):
    problem, _base, opt = oracle_cache(kind, spec)
    cell_problem = aggregate_problem(problem, COARSE_CELL_M)
    graph = cell_problem.graph
    # Demand conservation: every user lands in exactly one cell.
    assert int(graph.cell_demands.sum()) == problem.num_users
    assert graph.total_demand == problem.num_users
    s = min(2, problem.num_uavs)
    result = appro_alg(cell_problem, s=s)
    # Conservative coverage: any feasible cell flow maps each served unit
    # to a distinct, individually-coverable member user, so the cell
    # objective can never beat the exhaustive per-user optimum.
    assert result.served <= opt, (
        f"coarse cells served {result.served} > per-user optimum {opt} "
        f"on {kind} {spec}"
    )
    deployment = result.deployment
    if isinstance(deployment, CellDeployment):
        validate_cell_deployment(graph, cell_problem.fleet, deployment)
        totals = deployment.cell_totals()
        for c, units in totals.items():
            assert units <= int(graph.cell_demands[c])
        assert sum(totals.values()) == result.served
    else:
        # All cells degenerated to singletons (users further apart than
        # the cell edge) — the bit-identity path applies instead.
        assert int(graph.cell_demands.max(initial=0)) <= 1


@pytest.mark.parametrize("kind,spec", ALL_SPECS[:10])
def test_coverable_cells_have_coverable_members(kind, spec, oracle_cache):
    """Padded soundness, checked structurally on the line geometries:
    every member of a cell deemed coverable is individually coverable by
    the same UAV from the same location in the per-user graph."""
    problem, _base, _opt = oracle_cache(kind, spec)
    cell_problem = aggregate_problem(problem, COARSE_CELL_M)
    cell_graph = cell_problem.graph
    base_graph = problem.graph
    for uav in cell_problem.fleet:
        for v in range(cell_problem.num_locations):
            per_user = set(base_graph.coverable_users(v, uav))
            for c in cell_graph.coverable_users(v, uav):
                members = cell_graph.cells[c].members
                assert set(members) <= per_user, (
                    f"cell {c} coverable from {v} but member outside "
                    f"per-user coverage on {kind} {spec}"
                )
