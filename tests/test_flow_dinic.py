"""Tests for Dinic's max-flow against networkx and min-cut duality."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flow.dinic import Dinic


def random_flow_network(seed: int, n: int, arcs: int):
    """Random directed network; returns (Dinic, nx.DiGraph, source, sink)."""
    rng = np.random.default_rng(seed)
    ours = Dinic(n)
    theirs = nx.DiGraph()
    theirs.add_nodes_from(range(n))
    for _ in range(arcs):
        u, v = rng.integers(0, n, size=2)
        if u == v:
            continue
        cap = int(rng.integers(1, 12))
        ours.add_edge(int(u), int(v), cap)
        if theirs.has_edge(int(u), int(v)):
            theirs[int(u)][int(v)]["capacity"] += cap
        else:
            theirs.add_edge(int(u), int(v), capacity=cap)
    return ours, theirs, 0, n - 1


class TestDinicBasics:
    def test_single_arc(self):
        d = Dinic(2)
        arc = d.add_edge(0, 1, 5)
        assert d.max_flow(0, 1) == 5
        assert d.flow_on(arc) == 5

    def test_no_path(self):
        d = Dinic(3)
        d.add_edge(0, 1, 5)
        assert d.max_flow(0, 2) == 0

    def test_bottleneck(self):
        d = Dinic(4)
        d.add_edge(0, 1, 10)
        d.add_edge(1, 2, 3)
        d.add_edge(2, 3, 10)
        assert d.max_flow(0, 3) == 3

    def test_parallel_paths(self):
        d = Dinic(4)
        d.add_edge(0, 1, 2)
        d.add_edge(0, 2, 2)
        d.add_edge(1, 3, 2)
        d.add_edge(2, 3, 2)
        assert d.max_flow(0, 3) == 4

    def test_classic_cross_edge(self):
        # The textbook network where a naive greedy needs the reverse arc.
        d = Dinic(4)
        d.add_edge(0, 1, 1)
        d.add_edge(0, 2, 1)
        d.add_edge(1, 2, 1)
        d.add_edge(1, 3, 1)
        d.add_edge(2, 3, 1)
        assert d.max_flow(0, 3) == 2

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            Dinic(1)
        d = Dinic(3)
        with pytest.raises(IndexError):
            d.add_edge(0, 3, 1)
        with pytest.raises(ValueError):
            d.add_edge(0, 1, -1)
        with pytest.raises(ValueError):
            d.max_flow(1, 1)


class TestDinicAgainstNetworkx:
    @given(st.integers(0, 100_000), st.integers(2, 20), st.integers(0, 60))
    @settings(max_examples=50, deadline=None)
    def test_value_matches(self, seed, n, arcs):
        ours, theirs, s, t = random_flow_network(seed, n, arcs)
        expected = nx.maximum_flow_value(theirs, s, t) if theirs.number_of_edges() else 0
        assert ours.max_flow(s, t) == expected

    @given(st.integers(0, 100_000), st.integers(3, 15), st.integers(5, 40))
    @settings(max_examples=30, deadline=None)
    def test_min_cut_certifies(self, seed, n, arcs):
        """Max-flow value equals the capacity across the residual-reachable
        cut (strong duality certificate)."""
        ours, theirs, s, t = random_flow_network(seed, n, arcs)
        value = ours.max_flow(s, t)
        reachable = ours.min_cut_reachable(s)
        assert s in reachable and t not in reachable
        cut = 0
        for u, v, data in theirs.edges(data=True):
            if u in reachable and v not in reachable:
                cut += data["capacity"]
        assert cut == value


class TestFlowConservation:
    def test_flows_are_consistent(self):
        d = Dinic(5)
        arcs = [
            d.add_edge(0, 1, 4),
            d.add_edge(0, 2, 3),
            d.add_edge(1, 3, 2),
            d.add_edge(2, 3, 5),
            d.add_edge(1, 2, 2),
            d.add_edge(3, 4, 6),
        ]
        value = d.max_flow(0, 4)
        flows = [d.flow_on(a) for a in arcs]
        # Conservation at nodes 1, 2, 3.
        assert flows[0] == flows[2] + flows[4]
        assert flows[1] + flows[4] == flows[3]
        assert flows[2] + flows[3] == flows[5]
        assert flows[5] == value
