"""Tests for the energy/endurance extension."""

import math

import pytest

from repro.network.deployment import Deployment
from repro.network.energy import (
    EnergyModel,
    dbm_to_watts,
    fleet_endurance_s,
    mission_endurance_s,
)
from repro.network.uav import UAV


class TestDbmToWatts:
    def test_reference_points(self):
        assert dbm_to_watts(30.0) == pytest.approx(1.0)
        assert dbm_to_watts(0.0) == pytest.approx(1e-3)
        assert dbm_to_watts(40.0) == pytest.approx(10.0)


class TestEnergyModel:
    def test_hover_power_plausible(self):
        """A ~9 kg quadrotor hovers at several hundred watts up to ~2 kW —
        sanity band, not a precise value."""
        p = EnergyModel().hover_power_w()
        assert 300.0 < p < 3000.0

    def test_heavier_needs_more_power(self):
        light = EnergyModel(payload_mass_kg=0.5)
        heavy = EnergyModel(payload_mass_kg=5.5)
        assert heavy.hover_power_w() > light.hover_power_w()

    def test_radio_power_scales_with_tx(self):
        model = EnergyModel()
        weak = UAV(capacity=10, tx_power_dbm=30.0)
        strong = UAV(capacity=10, tx_power_dbm=40.0)
        assert model.radio_power_w(strong) > model.radio_power_w(weak)

    def test_endurance_realistic(self):
        """A Matrice-300-class battery (274 Wh x 2 in reality; we model the
        usable pack) should hover a UAV for tens of minutes, not hours."""
        model = EnergyModel()
        uav = UAV(capacity=100, battery_wh=548.0)
        endurance_min = model.endurance_s(uav) / 60.0
        assert 10.0 < endurance_min < 90.0

    def test_bigger_battery_lasts_longer(self):
        model = EnergyModel()
        a = UAV(capacity=10, battery_wh=200.0)
        b = UAV(capacity=10, battery_wh=600.0)
        assert model.endurance_s(b) == pytest.approx(3 * model.endurance_s(a))

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyModel(airframe_mass_kg=0.0)
        with pytest.raises(ValueError):
            EnergyModel(rotor_disk_area_m2=-1.0)
        with pytest.raises(ValueError):
            EnergyModel(propulsive_efficiency=1.5)
        with pytest.raises(ValueError):
            EnergyModel(pa_efficiency=0.0)
        with pytest.raises(ValueError):
            EnergyModel(avionics_power_w=-1.0)


class TestMissionEndurance:
    def make_fleet(self):
        return [
            UAV(capacity=10, battery_wh=300.0),
            UAV(capacity=10, battery_wh=600.0),
        ]

    def test_minimum_rules(self):
        fleet = self.make_fleet()
        dep = Deployment(placements={0: 0, 1: 1})
        per_uav = fleet_endurance_s(fleet, dep)
        assert mission_endurance_s(fleet, dep) == min(per_uav.values())
        assert per_uav[0] < per_uav[1]

    def test_only_deployed_counted(self):
        fleet = self.make_fleet()
        dep = Deployment(placements={1: 0})  # only the big-battery UAV
        per_uav = fleet_endurance_s(fleet, dep)
        assert set(per_uav) == {1}

    def test_empty_deployment_infinite(self):
        assert mission_endurance_s(self.make_fleet(), Deployment.empty()) == math.inf
