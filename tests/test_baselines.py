"""Tests for the four baseline algorithms and the reference points."""

import pytest

from repro.baselines.common import finalize, grow_connected_greedy, reference_uav
from repro.baselines.greedy_assign import _greedy_profits, greedy_assign
from repro.baselines.max_throughput import max_throughput
from repro.baselines.mcs import mcs
from repro.baselines.motionctrl import motion_ctrl
from repro.baselines.random_connected import random_connected
from repro.baselines.unconstrained import unconstrained_greedy
from repro.network.validate import validate_deployment
from tests.conftest import make_line_instance

CONNECTED_BASELINES = (mcs, motion_ctrl, greedy_assign, max_throughput)


@pytest.fixture
def problem():
    return make_line_instance(
        num_locations=6, users_per_location=3,
        capacities=(3, 1, 5, 2, 4, 3),
    )


class TestCommonHelpers:
    def test_reference_uav_median_capacity(self, problem):
        ref = reference_uav(problem)
        assert ref.capacity == 3  # median of (3,1,5,2,4,3) sorted -> idx 3
        assert ref.user_range_m == problem.fleet[0].user_range_m

    def test_finalize_index_order(self, problem):
        dep = finalize(problem, [2, 3, 4])
        assert dep.placements == {0: 2, 1: 3, 2: 4}

    def test_finalize_dedupes(self, problem):
        dep = finalize(problem, [2, 2, 3])
        assert dep.placements == {0: 2, 1: 3}

    def test_finalize_rejects_overflow(self, problem):
        with pytest.raises(ValueError, match="locations"):
            finalize(problem, list(range(7)))

    def test_grow_connected(self, problem):
        chosen = grow_connected_greedy(
            problem, seed_location=0, budget=4, gain=lambda v, _c: -v
        )
        assert chosen[0] == 0
        assert len(chosen) == 4
        # Each new node adjacent to an earlier one (line graph: contiguous).
        assert sorted(chosen) == list(range(4))


class TestBaselineFeasibility:
    @pytest.mark.parametrize("algorithm", CONNECTED_BASELINES,
                             ids=lambda a: a.__name__)
    def test_connected_and_valid(self, problem, algorithm):
        dep = algorithm(problem)
        validate_deployment(problem.graph, problem.fleet, dep)
        assert dep.num_deployed <= problem.num_uavs

    def test_random_connected_valid(self, problem):
        dep = random_connected(problem, seed=4)
        validate_deployment(problem.graph, problem.fleet, dep)

    def test_unconstrained_valid_without_connectivity(self, problem):
        dep = unconstrained_greedy(problem)
        validate_deployment(problem.graph, problem.fleet, dep,
                            require_connected=False)

    def test_unconstrained_at_least_connected_algorithms(self, problem):
        """Dropping a constraint can only help (with exact greedy gains on
        the disjoint line this is guaranteed)."""
        free = unconstrained_greedy(problem).served_count
        for algorithm in CONNECTED_BASELINES:
            assert free >= algorithm(problem).served_count


class TestGreedyProfits:
    def test_residual_profits_no_double_count(self, problem):
        profits = _greedy_profits(problem)
        # Disjoint coverage on the line: every location's profit is its own
        # pile (3 users), no residual discounting needed.
        assert all(p == 3 for p in profits)

    def test_overlapping_discounts(self):
        problem = make_line_instance(
            num_locations=3, users_per_location=2, spacing=300.0,
            capacities=(2, 2, 2),
        )
        profits = _greedy_profits(problem)
        # Coverage overlaps (300 m spacing, 400 m ground radius): total
        # profit across locations equals total distinct coverable users.
        ref = reference_uav(problem)
        union = set()
        for v in range(problem.num_locations):
            union |= set(problem.graph.coverable_users(v, ref))
        assert sum(profits) == len(union)


class TestBaselineBehaviour:
    def test_mcs_prefers_dense_regions(self):
        problem = make_line_instance(
            num_locations=5, users_per_location=4, capacities=(4, 4)
        )
        dep = mcs(problem)
        # Two UAVs, disjoint piles of 4: serves 8 wherever it lands.
        assert dep.served_count == 8

    def test_motionctrl_moves_toward_users(self):
        """All users sit under the last two locations; the initial centroid
        formation should migrate right and serve them."""
        from repro.core.problem import ProblemInstance
        from repro.network.coverage import CoverageGraph
        from repro.network.users import users_from_points

        base = make_line_instance(num_locations=6, users_per_location=1,
                                  capacities=(4, 4))
        points = [(2500.0 + i, 0.0) for i in range(4)]
        points += [(3000.0 + i, 0.0) for i in range(4)]
        graph = CoverageGraph(users=users_from_points(points),
                              locations=base.graph.locations,
                              uav_range_m=600.0)
        problem = ProblemInstance(graph=graph, fleet=base.fleet)
        dep = motion_ctrl(problem)
        assert dep.served_count == 8

    def test_max_throughput_serves_many(self, problem):
        dep = max_throughput(problem)
        assert dep.served_count > 0

    def test_random_connected_deterministic_by_seed(self, problem):
        a = random_connected(problem, seed=11)
        b = random_connected(problem, seed=11)
        assert a.placements == b.placements

    def test_capacity_obliviousness(self):
        """The documented heterogeneity-unawareness: fleet order, not
        capacity order, maps UAVs to locations."""
        problem = make_line_instance(
            num_locations=4, users_per_location=3, capacities=(1, 5, 1, 5)
        )
        dep = mcs(problem)
        # UAV 0 (capacity 1) occupies the first chosen location regardless
        # of its tiny capacity.
        assert 0 in dep.placements
