"""Tests for the coverage graph G = (U ∪ V, E)."""

import networkx as nx
import numpy as np
import pytest

from repro.geometry.grid import pairwise_within
from repro.geometry.point import Point3D
from repro.network.coverage import CoverageGraph
from repro.network.uav import UAV
from repro.network.users import users_from_points
from repro.workload.scenarios import paper_scenario


def random_coverage_graph(seed=0, n_users=60, cols=4, rows=3):
    rng = np.random.default_rng(seed)
    locations = [
        Point3D((c + 0.5) * 500.0, (r + 0.5) * 500.0, 300.0)
        for r in range(rows) for c in range(cols)
    ]
    points = rng.uniform(0, 500.0 * max(cols, rows), size=(n_users, 2))
    users = users_from_points([(float(x), float(y)) for x, y in points])
    return CoverageGraph(users=users, locations=locations, uav_range_m=600.0)


class TestConstruction:
    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            CoverageGraph(users=[], locations=[], uav_range_m=0.0)

    def test_rejects_ground_locations(self):
        with pytest.raises(ValueError, match="airborne"):
            CoverageGraph(users=[], locations=[Point3D(0, 0, 0)],
                          uav_range_m=600.0)

    def test_empty_graph(self):
        g = CoverageGraph(users=[], locations=[], uav_range_m=600.0)
        assert g.num_users == 0 and g.num_locations == 0

    def test_location_edges_match_naive(self):
        g = random_coverage_graph()
        expected = set(pairwise_within(g.locations, 600.0))
        got = {
            (u, v) for u, v, _ in g.location_graph.edges()
        }
        assert got == expected


class TestCoverableUsers:
    def test_matches_naive_filter(self):
        g = random_coverage_graph(seed=3)
        uav = UAV(capacity=10, tx_power_dbm=36.0, antenna_gain_db=3.0,
                  user_range_m=500.0)
        for v in range(g.num_locations):
            got = set(g.coverable_users(v, uav))
            expected = set()
            for u in range(g.num_users):
                dist = g.users[u].position.distance_to(g.locations[v])
                if dist <= uav.user_range_m and (
                    g.rate_bps(u, v, uav) >= g.users[u].min_rate_bps
                ):
                    expected.add(u)
            assert got == expected, f"coverage mismatch at location {v}"

    def test_rate_requirement_filters(self):
        """A sky-high min rate excludes users even in range."""
        locations = [Point3D(250.0, 250.0, 300.0)]
        users = users_from_points([(250.0, 250.0)], min_rate_bps=1e12)
        g = CoverageGraph(users=users, locations=locations, uav_range_m=600.0)
        uav = UAV(capacity=5)
        assert g.coverable_users(0, uav) == []

    def test_caching_returns_same_object(self):
        g = random_coverage_graph()
        uav = UAV(capacity=5)
        assert g.coverable_users(0, uav) is g.coverable_users(0, uav)

    def test_different_radios_different_coverage(self):
        g = random_coverage_graph(seed=5)
        small = UAV(capacity=5, user_range_m=350.0)
        large = UAV(capacity=5, user_range_m=500.0)
        for v in range(g.num_locations):
            assert set(g.coverable_users(v, small)) <= set(
                g.coverable_users(v, large)
            )

    def test_coverable_array_matches_list(self):
        g = random_coverage_graph()
        uav = UAV(capacity=5)
        for v in range(g.num_locations):
            assert list(g.coverable_array(v, uav)) == g.coverable_users(v, uav)


class TestHops:
    def test_hops_match_networkx(self):
        g = random_coverage_graph()
        nxg = nx.Graph()
        nxg.add_nodes_from(range(g.num_locations))
        nxg.add_edges_from((u, v) for u, v, _ in g.location_graph.edges())
        for src in range(g.num_locations):
            ours = g.hops_from(src)
            theirs = nx.single_source_shortest_path_length(nxg, src)
            for v in range(g.num_locations):
                assert ours[v] == theirs.get(v, -1)

    def test_hops_to_set(self):
        g = random_coverage_graph()
        sources = [0, g.num_locations - 1]
        multi = g.hops_to_set(sources)
        for v in range(g.num_locations):
            assert multi[v] == min(g.hops_from(s)[v] for s in sources)

    def test_connectivity(self):
        g = random_coverage_graph()
        assert g.locations_connected(list(range(g.num_locations)))
        assert g.locations_connected([0])
        assert not g.locations_connected([0, g.num_locations - 1]) or (
            g.hops_between(0, g.num_locations - 1) == 1
        )

    def test_reachable_from(self):
        g = random_coverage_graph()
        assert sorted(g.reachable_from(0)) == list(range(g.num_locations))


class TestScenarioIntegration:
    def test_paper_scenario_shape(self):
        p = paper_scenario(num_users=100, num_uavs=4, scale="small", seed=0)
        assert p.num_users == 100
        assert p.num_locations == 9
        assert p.num_uavs == 4
        # 1.5 km / 500 m grid at 300 m altitude: 4-neighbour lattice.
        assert p.graph.location_graph.num_edges == 12
