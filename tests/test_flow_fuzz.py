"""Fuzz tests for the incremental assignment engine.

The engine is the correctness-critical hot path of Algorithm 2 (every
marginal gain flows through it), so beyond the targeted unit tests we
drive it with random interleavings of try_open / rollback / commit and
cross-check the full state against an independent Dinic solution after
every commit.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flow.bipartite import IncrementalAssignment
from tests.test_flow_bipartite import dinic_value


@given(st.integers(0, 10**9))
@settings(max_examples=40, deadline=None)
def test_random_interleaving_matches_dinic(seed):
    rng = np.random.default_rng(seed)
    num_users = int(rng.integers(1, 25))
    engine = IncrementalAssignment(num_users)
    committed: dict = {}  # station key -> (covers, cap)

    for step in range(int(rng.integers(1, 12))):
        size = int(rng.integers(0, num_users + 1))
        covers = (
            [int(u) for u in rng.choice(num_users, size=size, replace=False)]
            if size else []
        )
        cap = int(rng.integers(0, num_users + 2))
        key = ("st", step)
        gain = engine.try_open(key, covers, cap)

        stations = list(committed.values())
        before = dinic_value(num_users, stations)
        after = dinic_value(num_users, stations + [(covers, cap)])
        assert gain == after - before, (
            f"gain {gain} != flow delta {after - before} at step {step}"
        )

        if rng.random() < 0.5:
            engine.rollback()
            assert engine.served_count == before
        else:
            engine.commit()
            committed[key] = (covers, cap)
            assert engine.served_count == after

    # Final full-state check: loads, coverage, uniqueness.
    assignment = engine.assignment()
    assert set(assignment) == set(committed)
    seen: set = set()
    for station, users in assignment.items():
        covers, cap = committed[station]
        assert len(users) <= cap
        assert set(users) <= set(covers)
        assert not (set(users) & seen)
        seen |= set(users)
    assert len(seen) == engine.served_count == dinic_value(
        num_users, list(committed.values())
    )


@given(st.integers(0, 10**9))
@settings(max_examples=20, deadline=None)
def test_rollback_is_perfect_undo(seed):
    """After any try_open + rollback, the observable state is bit-identical
    to before (assignments, loads, served count, gain bounds)."""
    rng = np.random.default_rng(seed)
    num_users = int(rng.integers(1, 20))
    engine = IncrementalAssignment(num_users)
    for i in range(int(rng.integers(0, 5))):
        size = int(rng.integers(0, num_users + 1))
        covers = (
            [int(u) for u in rng.choice(num_users, size=size, replace=False)]
            if size else []
        )
        engine.open(i, covers, int(rng.integers(0, 6)))

    snapshot_assign = [engine.station_of(u) for u in range(num_users)]
    snapshot_loads = {s: engine.load_of(s) for s in engine.stations()}
    snapshot_served = engine.served_count
    probe = [int(u) for u in rng.choice(num_users,
                                        size=min(5, num_users), replace=False)]
    snapshot_bound = engine.direct_gain_bound(probe, 3)

    size = int(rng.integers(0, num_users + 1))
    covers = (
        [int(u) for u in rng.choice(num_users, size=size, replace=False)]
        if size else []
    )
    engine.try_open("tmp", covers, int(rng.integers(0, num_users + 2)))
    engine.rollback()

    assert [engine.station_of(u) for u in range(num_users)] == snapshot_assign
    assert {s: engine.load_of(s) for s in engine.stations()} == snapshot_loads
    assert engine.served_count == snapshot_served
    assert engine.direct_gain_bound(probe, 3) == snapshot_bound
    assert "tmp" not in engine.stations()
