"""Tests for :mod:`repro.dynamics.spec`."""

from dataclasses import replace

import pytest

from repro.dynamics.spec import (
    DYNAMIC_PRESETS,
    DynamicSpec,
    dynamic_preset_names,
    get_dynamic_preset,
)
from repro.scenario.spec import ScenarioSpec


def small_spec(**overrides) -> DynamicSpec:
    base = dict(
        name="t", scale="small", num_users=20, num_uavs=3, seed=1,
        duration_s=100.0, epoch_s=25.0,
    )
    base.update(overrides)
    return DynamicSpec(**base)


class TestValidation:
    def test_defaults_valid(self):
        spec = small_spec()
        assert spec.duration_s == 100.0
        assert spec.resolve_policy == "periodic"
        assert spec.warm_start is True

    @pytest.mark.parametrize("field,value", [
        ("duration_s", 0.0),
        ("duration_s", -5.0),
        ("epoch_s", 0.0),
        ("mean_dwell_s", 0.0),
        ("hotspot_sigma_m", 0.0),
        ("mobility_step_s", 0.0),
        ("arrival_rate_per_s", -0.1),
        ("hotspot_drift_mps", -1.0),
        ("mobility_sigma_m", -1.0),
        ("recharge_s", -1.0),
        ("relocation_speed_mps", 0.0),
        ("num_hotspots", 0),
        ("num_crashes", -1),
        ("num_links", -1),
        ("drift_threshold", 0.0),
        ("drift_threshold", 1.5),
        ("resolve_policy", "sometimes"),
        ("warm_start", "yes"),
    ])
    def test_rejects_bad_field(self, field, value):
        with pytest.raises(ValueError):
            small_spec(**{field: value})

    def test_inherits_static_validation(self):
        with pytest.raises(ValueError):
            small_spec(num_users=0)

    def test_zeroed_churn_allowed(self):
        spec = small_spec(arrival_rate_per_s=0.0)
        assert spec.arrival_rate_per_s == 0.0


class TestRoundTrip:
    def test_json_round_trip(self):
        spec = small_spec(
            resolve_policy="drift", drift_threshold=0.2, num_crashes=1,
            recharge_s=300.0, relocation_speed_mps=12.0,
        )
        data = spec.to_dict()
        assert data["kind"] == "dynamic-spec"
        assert DynamicSpec.from_dict(data) == spec

    def test_rejects_static_kind(self):
        data = small_spec().to_dict()
        data["kind"] = "scenario-spec"
        with pytest.raises(ValueError, match="dynamic-spec"):
            DynamicSpec.from_dict(data)

    def test_rejects_unknown_field(self):
        data = small_spec().to_dict()
        data["wormhole"] = True
        with pytest.raises(ValueError, match="wormhole"):
            DynamicSpec.from_dict(data)

    def test_rejects_future_format(self):
        data = small_spec().to_dict()
        data["format"] = 99
        with pytest.raises(ValueError, match="format"):
            DynamicSpec.from_dict(data)


class TestPresets:
    def test_names_sorted_and_complete(self):
        names = dynamic_preset_names()
        assert names == sorted(names)
        assert {"dynamic-small", "dynamic-surge", "dynamic-headline"} \
            <= set(names)

    def test_presets_validate(self):
        for name, spec in DYNAMIC_PRESETS.items():
            assert spec.name == name
            # Re-running validation on a round-trip must not raise.
            assert DynamicSpec.from_dict(spec.to_dict()) == spec

    def test_get_unknown_lists_known(self):
        with pytest.raises(KeyError, match="dynamic-small"):
            get_dynamic_preset("nope")

    def test_static_half_matches_parent(self):
        """A dynamic spec builds the same initial scenario a static spec
        with the same knobs would."""
        dyn = get_dynamic_preset("dynamic-small")
        static = ScenarioSpec(
            name=dyn.name, scale=dyn.scale, num_users=dyn.num_users,
            num_uavs=dyn.num_uavs, seed=dyn.seed, algorithm=dyn.algorithm,
            algorithm_params=dyn.algorithm_params,
        )
        assert dyn.to_config() == static.to_config()

    def test_seed_override_keeps_time_knobs(self):
        dyn = replace(get_dynamic_preset("dynamic-surge"), seed=99)
        assert dyn.seed == 99
        assert dyn.resolve_policy == "drift"


class TestLayering:
    def test_lower_layers_never_import_dynamics(self):
        """docs/ARCHITECTURE.md rule 3: `repro.dynamics` imports the
        layers it orchestrates, never the reverse."""
        import ast
        from pathlib import Path

        src = Path(__file__).resolve().parent.parent / "src" / "repro"
        lower = ("scenario", "sim", "simnet", "ops", "core", "network",
                 "workload", "baselines", "obs", "util")
        offenders = []
        for layer in lower:
            for path in (src / layer).rglob("*.py"):
                tree = ast.parse(path.read_text())
                for node in ast.walk(tree):
                    if isinstance(node, ast.Import):
                        names = [a.name for a in node.names]
                    elif isinstance(node, ast.ImportFrom):
                        names = [node.module or ""]
                    else:
                        continue
                    if any(n.startswith("repro.dynamics") for n in names):
                        offenders.append(str(path))
        assert offenders == []
