"""End-to-end tests of the fault-tolerant mission runtime."""

import pytest

from repro.ops import (
    BATTERY,
    CRASH,
    LINK,
    Fault,
    FaultSchedule,
    MissionConfig,
    RecoveryPolicy,
    run_mission,
)
from repro.ops import log as evt
from repro.sim.report import mission_report
from repro.sim.runner import ALGORITHMS, WatchdogConfig
from tests.conftest import make_line_instance


@pytest.fixture
def line():
    return make_line_instance(
        num_locations=5, users_per_location=4,
        capacities=(4, 4, 4, 4, 4),
    )


def config(**kw) -> MissionConfig:
    policy = RecoveryPolicy(
        watchdog=WatchdogConfig(params={"approAlg": {"s": 2}}),
        **kw.pop("policy_kw", {}),
    )
    return MissionConfig(policy=policy, **kw)


class TestMissionBasics:
    def test_no_faults_is_a_quiet_mission(self, line):
        result = run_mission(line, FaultSchedule(), config())
        assert result.faults_injected == 0
        assert result.repairs == 0
        assert result.served_initial == 20
        assert result.served_final == 20
        assert result.final_valid and result.final_connected
        kinds = [e.kind for e in result.log]
        assert kinds == [evt.MISSION_END]

    def test_crash_recovery_restores_validated_network(self, line):
        schedule = FaultSchedule(faults=(
            Fault(time_s=10.0, kind=CRASH, uav_index=2),
        ))
        result = run_mission(line, schedule, config())
        assert result.faults_injected == 1
        assert result.repairs == 1
        assert result.served_min < 20
        assert result.served_final == 16
        assert result.final_valid and result.final_connected
        assert 2 not in result.final_deployment.placements
        counts = result.log.counts()
        assert counts[evt.FAULT] == 1
        assert counts[evt.DEGRADE] == 1
        assert counts[evt.REPAIR] == 1

    def test_two_crashes(self, line):
        schedule = FaultSchedule(faults=(
            Fault(time_s=10.0, kind=CRASH, uav_index=1),
            Fault(time_s=40.0, kind=CRASH, uav_index=3),
        ))
        result = run_mission(line, schedule, config())
        assert result.faults_injected == 2
        assert result.final_valid and result.final_connected
        assert result.final_deployment.num_deployed == 3
        assert result.served_final == 12
        assert not {1, 3} & set(result.final_deployment.placements)

    def test_faults_after_duration_ignored(self, line):
        schedule = FaultSchedule(faults=(
            Fault(time_s=500.0, kind=CRASH, uav_index=2),
        ))
        result = run_mission(line, schedule, config(duration_s=100.0))
        assert result.faults_injected == 0
        assert result.served_final == 20

    def test_timeline_is_monotone_in_time(self, line):
        schedule = FaultSchedule(faults=(
            Fault(time_s=10.0, kind=CRASH, uav_index=2),
            Fault(time_s=20.0, kind=CRASH, uav_index=0),
        ))
        result = run_mission(line, schedule, config())
        times = [t for t, _ in result.timeline]
        assert times == sorted(times)
        assert result.timeline[0] == (0.0, 20)


class TestBackoffAndRestore:
    def test_backoff_retries_then_swap_repairs(self, line):
        """The acceptance scenario: an end-of-chain battery fault cannot be
        repaired until the swap completes, so the loop backs off, gives up,
        and heals when the UAV returns."""
        schedule = FaultSchedule(faults=(
            Fault(time_s=10.0, kind=BATTERY, uav_index=4, duration_s=50.0),
        ))
        result = run_mission(
            line, schedule,
            config(duration_s=120.0,
                   policy_kw=dict(max_retries=3, backoff_initial_s=5.0,
                                  backoff_factor=2.0)),
        )
        counts = result.log.counts()
        assert counts[evt.BACKOFF] == 2          # attempts 1 and 2 backed off
        assert counts[evt.REPLAN_ATTEMPT] == 4   # 3 in cycle 1 + 1 on return
        assert counts[evt.REPAIR_FAILED] == 1
        assert counts[evt.UAV_RESTORED] == 1
        assert counts[evt.REPAIR] == 1
        # Exponential spacing: attempts at 10, 15, 25; restore at 60.
        attempt_times = [
            e.time_s for e in result.log.of_kind(evt.REPLAN_ATTEMPT)
        ]
        assert attempt_times == [10.0, 15.0, 25.0, 60.0]
        assert result.served_min == 16
        assert result.served_final == 20
        assert result.final_valid and result.final_connected

    def test_permanent_battery_fault_stays_degraded(self, line):
        schedule = FaultSchedule(faults=(
            Fault(time_s=10.0, kind=BATTERY, uav_index=4),  # no swap
        ))
        result = run_mission(line, schedule, config())
        assert result.repairs == 0
        assert result.served_final == 16
        assert result.final_valid and result.final_connected
        assert result.log.counts()[evt.REPAIR_FAILED] == 1

    def test_link_fault_heals_and_triggers_replan(self, line):
        schedule = FaultSchedule(faults=(
            Fault(time_s=10.0, kind=LINK, link=(2, 3), duration_s=30.0),
        ))
        result = run_mission(line, schedule, config())
        counts = result.log.counts()
        assert counts[evt.FAULT] == 1
        assert counts[evt.LINK_RESTORED] == 1
        assert result.final_valid and result.final_connected
        assert result.served_final == 20

    def test_new_fault_supersedes_pending_retry(self, line):
        """A crash arriving during a backoff wait restarts the cycle; the
        stale retry must not fire as well."""
        schedule = FaultSchedule(faults=(
            Fault(time_s=10.0, kind=BATTERY, uav_index=4, duration_s=100.0),
            Fault(time_s=12.0, kind=CRASH, uav_index=2),
        ))
        result = run_mission(
            line, schedule,
            config(duration_s=60.0,
                   policy_kw=dict(max_retries=2, backoff_initial_s=20.0)),
        )
        # Cycle 1 (battery): attempt at 10, backoff 20s -> retry pending at
        # 30 which the crash at 12 must cancel.  Cycle 2 (crash): attempt
        # at 12 repairs with the 3 survivors.
        attempt_times = [
            e.time_s for e in result.log.of_kind(evt.REPLAN_ATTEMPT)
        ]
        assert 30.0 not in attempt_times
        assert result.final_valid and result.final_connected


class TestMissionFailureModes:
    def test_initial_planning_failure_is_reported_not_raised(
        self, line, monkeypatch
    ):
        def boom(problem, **kw):
            raise RuntimeError("no plan for you")

        for name in ("approAlg", "MCS", "GreedyAssign"):
            monkeypatch.setitem(ALGORITHMS, name, boom)
        result = run_mission(line, FaultSchedule(), config())
        assert not result.final_valid
        assert result.initial_record.status == "failed"
        assert result.served_final == 0
        assert result.log.events[0].kind == evt.MISSION_END

    def test_grounded_uav_fault_does_not_degrade_again(self, line):
        """A second fault on a UAV that is already on the ground must not
        touch the serving network a second time."""
        schedule = FaultSchedule(faults=(
            Fault(time_s=10.0, kind=CRASH, uav_index=4),
            Fault(time_s=50.0, kind=BATTERY, uav_index=4),
        ))
        result = run_mission(line, schedule, config())
        counts = result.log.counts()
        assert result.faults_injected == 2
        assert counts[evt.FAULT] == 2
        assert counts[evt.DEGRADE] == 1  # only the first fault degrades
        assert result.served_final == 16
        assert result.final_valid and result.final_connected


class TestMissionReport:
    def test_report_renders_all_sections(self, line):
        schedule = FaultSchedule(faults=(
            Fault(time_s=10.0, kind=CRASH, uav_index=2),
        ))
        result = run_mission(line, schedule, config())
        text = mission_report(line, result)
        assert "== mission ==" in text
        assert "== mission log ==" in text
        assert "== final map ==" in text
        assert "repair" in text
