"""Shared fixtures: hand-built tiny instances and small random scenarios.

Also provides the ``timeout_guard(seconds)`` marker: a zero-dependency
SIGALRM watchdog for tests that drive process pools, turning a hung pool
into a clear ``TimeoutError`` instead of a stuck CI job.  On platforms
without ``SIGALRM`` (Windows) the marker is a no-op.
"""

from __future__ import annotations

import signal

import pytest

from repro.channel.atg import AirToGroundChannel
from repro.channel.presets import URBAN
from repro.core.problem import ProblemInstance
from repro.geometry.point import Point3D
from repro.network.coverage import CoverageGraph
from repro.network.uav import UAV
from repro.network.users import users_from_points
from repro.workload.scenarios import paper_scenario


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "timeout_guard(seconds): fail the test with TimeoutError if it "
        "runs past the wall-clock guard (SIGALRM; guards hung pools)",
    )


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    marker = item.get_closest_marker("timeout_guard")
    if marker is None or not hasattr(signal, "SIGALRM"):
        yield
        return
    seconds = int(marker.args[0]) if marker.args else 120

    def _abort(signum, frame):
        raise TimeoutError(
            f"test exceeded its {seconds}s timeout guard (hung pool?)"
        )

    previous = signal.signal(signal.SIGALRM, _abort)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def make_line_instance(
    num_locations: int = 5,
    users_per_location: "int | list" = 4,
    capacities: "tuple | None" = None,
    spacing: float = 500.0,
    altitude: float = 300.0,
    uav_range: float = 600.0,
    user_range: float = 500.0,
) -> ProblemInstance:
    """Locations on a line, ``users_per_location`` users directly beneath
    each location (an int for a uniform count, or one count per location
    for skewed instances).  Coverage is disjoint per location when
    ``spacing`` exceeds twice the ground radius, making optima easy to
    reason about."""
    locations = [
        Point3D(spacing * (j + 1), 0.0, altitude) for j in range(num_locations)
    ]
    if isinstance(users_per_location, int):
        per_location = [users_per_location] * num_locations
    else:
        per_location = list(users_per_location)
        if len(per_location) != num_locations:
            raise ValueError("need one user count per location")
    points = []
    for j in range(num_locations):
        for i in range(per_location[j]):
            points.append((spacing * (j + 1) + 5.0 * i, 0.0))
    users = users_from_points(points)
    graph = CoverageGraph(
        users=users,
        locations=locations,
        uav_range_m=uav_range,
        channel=AirToGroundChannel(URBAN),
    )
    if capacities is None:
        capacities = tuple(per_location)
    fleet = [
        UAV(capacity=c, tx_power_dbm=36.0, antenna_gain_db=3.0,
            user_range_m=user_range, name=f"uav-{k}")
        for k, c in enumerate(capacities)
    ]
    return ProblemInstance(graph=graph, fleet=fleet)


@pytest.fixture
def line_instance() -> ProblemInstance:
    return make_line_instance()


@pytest.fixture(scope="session")
def small_scenario() -> ProblemInstance:
    """The reusable 'small' scale paper scenario (9 locations, 6 UAVs)."""
    return paper_scenario(num_users=250, num_uavs=6, scale="small", seed=3)


@pytest.fixture(scope="session")
def bench_scenario() -> ProblemInstance:
    """A moderate scenario for integration tests (36 locations)."""
    return paper_scenario(num_users=600, num_uavs=10, scale="bench", seed=5)
