"""Tests for the local-search post-optimiser."""

import pytest

from repro.core.approx import appro_alg
from repro.core.local_search import local_search
from repro.network.deployment import Deployment
from repro.network.validate import validate_deployment
from repro.baselines.random_connected import random_connected
from tests.conftest import make_line_instance


class TestLocalSearch:
    def test_never_worse(self, small_scenario):
        start = random_connected(small_scenario, seed=1)
        result = local_search(small_scenario, start)
        assert result.served >= start.served_count
        validate_deployment(
            small_scenario.graph, small_scenario.fleet, result.deployment
        )

    def test_improves_bad_placement(self):
        """UAVs parked over empty piles must migrate to the users."""
        from repro.core.problem import ProblemInstance
        from repro.network.coverage import CoverageGraph
        from repro.network.users import users_from_points

        base = make_line_instance(num_locations=6, users_per_location=1,
                                  capacities=(4, 4))
        # All users under locations 4 and 5; deployment starts at 0 and 1.
        points = [(2500.0 + i, 0.0) for i in range(4)]
        points += [(3000.0 + i, 0.0) for i in range(4)]
        graph = CoverageGraph(users=users_from_points(points),
                              locations=base.graph.locations,
                              uav_range_m=600.0)
        problem = ProblemInstance(graph=graph, fleet=base.fleet)
        start = Deployment(placements={0: 0, 1: 1})
        result = local_search(problem, start, max_rounds=20)
        assert result.served == 8
        assert result.moves_applied > 0
        validate_deployment(problem.graph, problem.fleet, result.deployment)

    def test_local_optimum_stops(self, small_scenario):
        """Running local search on its own output applies no more moves."""
        start = random_connected(small_scenario, seed=2)
        once = local_search(small_scenario, start)
        twice = local_search(small_scenario, once.deployment)
        assert twice.moves_applied == 0
        assert twice.served == once.served

    def test_appro_alg_near_local_optimum(self, small_scenario):
        """approAlg solutions should leave little for local search —
        a quality indicator."""
        result = appro_alg(small_scenario, s=2, gain_mode="fast")
        polished = local_search(small_scenario, result.deployment)
        assert polished.served <= result.served * 1.10
        assert polished.served >= result.served

    def test_empty_deployment_noop(self, small_scenario):
        result = local_search(small_scenario, Deployment.empty())
        assert result.served == 0
        assert result.moves_applied == 0

    def test_validation(self, small_scenario):
        start = Deployment.empty()
        with pytest.raises(ValueError):
            local_search(small_scenario, start, max_rounds=-1)
        with pytest.raises(ValueError):
            local_search(small_scenario, start, neighbourhood_hops=0)

    def test_connectivity_preserved_each_config(self):
        problem = make_line_instance(num_locations=8, users_per_location=2)
        start = Deployment(placements={0: 3, 1: 4, 2: 5})
        result = local_search(problem, start, max_rounds=5)
        locs = result.deployment.locations_used()
        from repro.graphs.bfs import is_connected
        assert is_connected(problem.graph.location_graph, locs)
