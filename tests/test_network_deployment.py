"""Tests for the Deployment value object."""

import pytest

from repro.network.deployment import Deployment


class TestDeployment:
    def test_empty(self):
        d = Deployment.empty()
        assert d.served_count == 0
        assert d.num_deployed == 0
        assert d.locations_used() == []
        assert d.loads() == {}

    def test_counts(self):
        d = Deployment(placements={0: 5, 1: 7}, assignment={3: 0, 4: 0, 9: 1})
        assert d.served_count == 3
        assert d.num_deployed == 2
        assert d.locations_used() == [5, 7]
        assert d.load_of(0) == 2
        assert d.load_of(1) == 1
        assert d.loads() == {0: 2, 1: 1}
        assert d.users_of(0) == [3, 4]

    def test_zero_load_included(self):
        d = Deployment(placements={0: 1, 1: 2}, assignment={5: 0})
        assert d.loads() == {0: 1, 1: 0}

    def test_rejects_shared_location(self):
        with pytest.raises(ValueError, match="share"):
            Deployment(placements={0: 3, 1: 3})

    def test_rejects_assignment_to_undeployed(self):
        with pytest.raises(ValueError, match="undeployed"):
            Deployment(placements={0: 1}, assignment={4: 7})

    def test_load_of_unknown_uav(self):
        d = Deployment(placements={0: 1})
        with pytest.raises(KeyError):
            d.load_of(9)
        with pytest.raises(KeyError):
            d.users_of(9)
