"""Tests for the adjacency-list Graph."""

import pytest

from repro.graphs.adjacency import Graph


class TestGraphBasics:
    def test_empty(self):
        g = Graph(0)
        assert g.num_nodes == 0 and g.num_edges == 0
        assert g.edges() == []

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            Graph(-1)

    def test_add_edge_both_directions(self):
        g = Graph(3)
        g.add_edge(0, 2)
        assert g.has_edge(0, 2) and g.has_edge(2, 0)
        assert g.neighbours(0) == [2]
        assert g.neighbours(2) == [0]
        assert g.num_edges == 1

    def test_rejects_self_loop(self):
        g = Graph(2)
        with pytest.raises(ValueError, match="self-loop"):
            g.add_edge(1, 1)

    def test_rejects_parallel_edge(self):
        g = Graph(2)
        g.add_edge(0, 1)
        with pytest.raises(ValueError, match="already"):
            g.add_edge(1, 0)

    def test_rejects_out_of_range(self):
        g = Graph(2)
        with pytest.raises(IndexError):
            g.add_edge(0, 2)
        with pytest.raises(IndexError):
            g.neighbours(5)

    def test_weights(self):
        g = Graph(3)
        g.add_edge(0, 1, 2.5)
        assert g.weight(0, 1) == 2.5
        assert g.weight(1, 0) == 2.5
        with pytest.raises(KeyError):
            g.weight(0, 2)

    def test_degree(self):
        g = Graph(4)
        g.add_edge(0, 1)
        g.add_edge(0, 2)
        g.add_edge(0, 3)
        assert g.degree(0) == 3
        assert g.degree(3) == 1

    def test_from_edges(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        assert g.num_edges == 2
        gw = Graph.from_edges(3, [(0, 1, 5.0)], weighted=True)
        assert gw.weight(0, 1) == 5.0

    def test_edges_listing(self):
        g = Graph(3)
        g.add_edge(2, 0, 1.5)
        g.add_edge(1, 2)
        assert sorted(g.edges()) == [(0, 2, 1.5), (1, 2, 1.0)]


class TestSubgraph:
    def test_induced_subgraph(self):
        g = Graph(5)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.add_edge(3, 4)
        sub, mapping = g.subgraph([1, 2, 3])
        assert sub.num_nodes == 3
        assert sub.num_edges == 2
        assert sub.has_edge(mapping[1], mapping[2])
        assert sub.has_edge(mapping[2], mapping[3])
        assert not sub.has_edge(mapping[1], mapping[3])

    def test_subgraph_keeps_weights(self):
        g = Graph(3)
        g.add_edge(0, 2, 7.0)
        sub, mapping = g.subgraph([0, 2])
        assert sub.weight(mapping[0], mapping[2]) == 7.0
