"""Tests for Eulerian paths over doubled spanning trees (Section III-A)."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.euler import (
    eulerian_path_by_doubling,
    is_eulerian_path,
    split_path,
)


def random_tree(seed: int, n: int) -> list:
    rng = np.random.default_rng(seed)
    return [(int(rng.integers(0, i)), i) for i in range(1, n)]


def doubled_multiset(edges: list, keep: tuple) -> list:
    keep = (min(keep), max(keep))
    out = []
    for u, v in edges:
        e = (min(u, v), max(u, v))
        out.append(e)
        if e != keep:
            out.append(e)
    return out


class TestEulerianPath:
    def test_single_node(self):
        assert eulerian_path_by_doubling(1, []) == [0]

    def test_two_nodes(self):
        path = eulerian_path_by_doubling(2, [(0, 1)])
        assert path in ([0, 1], [1, 0])

    def test_paper_size_example(self):
        """K = 11 nodes: duplicating K-2 edges gives an Eulerian path with
        2K-3 = 19 edges (Fig. 2(a)-(b))."""
        edges = random_tree(42, 11)
        path = eulerian_path_by_doubling(11, edges)
        assert len(path) == 2 * 11 - 2
        assert is_eulerian_path(path, doubled_multiset(edges, edges[0]))

    def test_wrong_edge_count_rejected(self):
        with pytest.raises(ValueError, match="needs"):
            eulerian_path_by_doubling(4, [(0, 1)])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            eulerian_path_by_doubling(3, [(0, 1), (1, 0)])

    def test_keep_single_must_be_tree_edge(self):
        with pytest.raises(ValueError, match="not a tree edge"):
            eulerian_path_by_doubling(3, [(0, 1), (1, 2)], keep_single=(0, 2))

    def test_endpoints_are_kept_edge_ends(self):
        edges = [(0, 1), (1, 2), (2, 3)]
        path = eulerian_path_by_doubling(4, edges, keep_single=(1, 2))
        assert {path[0], path[-1]} == {1, 2}

    @given(st.integers(0, 10_000), st.integers(2, 40))
    @settings(max_examples=40, deadline=None)
    def test_path_traverses_exact_multiset(self, seed, n):
        edges = random_tree(seed, n)
        path = eulerian_path_by_doubling(n, edges)
        assert len(path) == 2 * n - 2
        assert is_eulerian_path(path, doubled_multiset(edges, edges[0]))
        # Consecutive path nodes must be tree-adjacent.
        tree = nx.Graph(edges)
        for a, b in zip(path, path[1:]):
            assert tree.has_edge(a, b)

    @given(st.integers(0, 10_000), st.integers(2, 30))
    @settings(max_examples=20, deadline=None)
    def test_visits_every_node(self, seed, n):
        edges = random_tree(seed, n)
        path = eulerian_path_by_doubling(n, edges)
        assert set(path) == set(range(n))


class TestSplitPath:
    def test_paper_example_split(self):
        """2K-2 = 20 path nodes split with L = 10 into Delta = 2 segments
        (Fig. 2(c))."""
        path = list(range(20))
        segments = split_path(path, 10)
        assert len(segments) == 2
        assert all(len(seg) == 10 for seg in segments)

    def test_ragged_tail(self):
        segments = split_path(list(range(7)), 3)
        assert [len(s) for s in segments] == [3, 3, 1]

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            split_path([1, 2], 0)

    @given(st.lists(st.integers(), min_size=1, max_size=60), st.integers(1, 10))
    def test_concatenation_identity(self, path, seg_len):
        segments = split_path(path, seg_len)
        assert [x for seg in segments for x in seg] == path
        assert all(len(s) == seg_len for s in segments[:-1])
        assert 1 <= len(segments[-1]) <= seg_len
