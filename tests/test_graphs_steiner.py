"""Tests for shortest-path Steiner expansion (the connection step)."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.adjacency import Graph
from repro.graphs.bfs import is_connected
from repro.graphs.steiner import connection_cost_lower_bound, steiner_connect


def grid_graph(cols: int, rows: int) -> Graph:
    g = Graph(cols * rows)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                g.add_edge(v, v + 1)
            if r + 1 < rows:
                g.add_edge(v, v + cols)
    return g


class TestSteinerConnect:
    def test_empty_and_single(self):
        g = grid_graph(3, 3)
        assert steiner_connect(g, []) == (set(), [])
        nodes, edges = steiner_connect(g, [4])
        assert nodes == {4} and edges == []

    def test_adjacent_terminals_no_relays(self):
        g = grid_graph(3, 3)
        nodes, _ = steiner_connect(g, [0, 1, 2])
        assert nodes == {0, 1, 2}

    def test_far_terminals_add_relays(self):
        g = grid_graph(5, 1)  # a path 0-1-2-3-4
        nodes, edges = steiner_connect(g, [0, 4])
        assert nodes == {0, 1, 2, 3, 4}
        assert len(edges) == 1
        assert edges[0][2][0] == 0 and edges[0][2][-1] == 4

    def test_disconnected_terminals_raise(self):
        g = Graph(4)
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        with pytest.raises(ValueError, match="disconnected"):
            steiner_connect(g, [0, 3])

    def test_result_connected_and_contains_terminals(self):
        g = grid_graph(6, 6)
        terminals = [0, 35, 5, 30]
        nodes, _ = steiner_connect(g, terminals)
        assert set(terminals) <= nodes
        assert is_connected(g, nodes)

    @given(st.integers(0, 10_000), st.integers(2, 6), st.integers(2, 6),
           st.integers(2, 6))
    @settings(max_examples=40, deadline=None)
    def test_random_terminals_connected(self, seed, cols, rows, num_terms):
        g = grid_graph(cols, rows)
        rng = np.random.default_rng(seed)
        terminals = list(
            rng.choice(cols * rows, size=min(num_terms, cols * rows),
                       replace=False)
        )
        nodes, _ = steiner_connect(g, [int(t) for t in terminals])
        assert {int(t) for t in terminals} <= nodes
        assert is_connected(g, nodes)

    def test_within_2x_steiner_optimum_on_grid(self):
        """MST-of-shortest-paths is a 2-approximation of the Steiner tree;
        check against networkx's Steiner approximation on a grid."""
        g = grid_graph(5, 5)
        nxg = nx.Graph((u, v) for u, v, _ in g.edges())
        terminals = [0, 4, 20, 24]
        nodes, _ = steiner_connect(g, terminals)
        reference = nx.algorithms.approximation.steiner_tree(
            nxg, terminals
        ).number_of_nodes()
        assert len(nodes) <= 2 * reference


class TestConnectionLowerBound:
    def test_trivial_cases(self):
        g = grid_graph(3, 3)
        assert connection_cost_lower_bound(g, []) == 0
        assert connection_cost_lower_bound(g, [4]) == 1

    def test_bound_is_valid(self):
        g = grid_graph(6, 6)
        rng = np.random.default_rng(2)
        for _ in range(25):
            terminals = [
                int(t) for t in rng.choice(36, size=4, replace=False)
            ]
            bound = connection_cost_lower_bound(g, terminals)
            nodes, _ = steiner_connect(g, terminals)
            assert bound <= len(nodes)

    def test_disconnected_exceeds_graph(self):
        g = Graph(4)
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        assert connection_cost_lower_bound(g, [0, 2]) > g.num_nodes
