"""Tests for the perf-regression detector (``repro.obs.regress``)."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.regress import (
    IMPROVED,
    KEY_FIELDS,
    MISSING,
    NEW,
    REGRESSED,
    UNCHANGED,
    classify,
    load_points,
    perf_diff,
    perf_diff_paths,
)


def _pt(scenario="engine:n=400", algorithm="approAlg", workers=1,
        scale="bench", wall_s=1.0, **extra) -> dict:
    return {"scenario": scenario, "algorithm": algorithm,
            "workers": workers, "scale": scale, "wall_s": wall_s, **extra}


# -- classification ----------------------------------------------------------


def test_classify_threshold_edges_are_inclusive():
    # Exact float arithmetic: baseline 4.0, threshold 0.25.
    assert classify(4.0, 5.0, 0.25) == (UNCHANGED, pytest.approx(0.25))
    assert classify(4.0, 5.01, 0.25)[0] == REGRESSED
    assert classify(4.0, 3.0, 0.25) == (UNCHANGED, pytest.approx(-0.25))
    assert classify(4.0, 2.99, 0.25)[0] == IMPROVED


def test_classify_one_sided_keys():
    assert classify(None, 1.0, 0.15) == (NEW, None)
    assert classify(1.0, None, 0.15) == (MISSING, None)


def test_classify_zero_baseline_never_regresses():
    assert classify(0.0, 5.0, 0.15) == (UNCHANGED, None)


# -- perf_diff ---------------------------------------------------------------


def test_identical_recordings_are_unchanged_with_exit_zero():
    points = [_pt(), _pt(algorithm="MCS", wall_s=0.5)]
    diff = perf_diff(points, points)
    assert diff.counts() == {UNCHANGED: 2}
    assert diff.exit_code == 0
    assert "no regression" in diff.to_text()


def test_regression_detected_and_sorted_worst_first():
    baseline = [_pt(wall_s=1.0), _pt(algorithm="MCS", wall_s=1.0)]
    current = [_pt(wall_s=2.0), _pt(algorithm="MCS", wall_s=1.5)]
    diff = perf_diff(baseline, current, threshold=0.15)
    assert [e.status for e in diff.entries] == [REGRESSED, REGRESSED]
    assert diff.entries[0].delta == pytest.approx(1.0)   # worst first
    assert diff.entries[1].delta == pytest.approx(0.5)
    assert diff.exit_code == 1
    assert "REGRESSION: 2 key(s)" in diff.to_text()


def test_improved_new_and_missing_never_fail_the_gate():
    baseline = [_pt(wall_s=2.0), _pt(algorithm="gone", wall_s=1.0)]
    current = [_pt(wall_s=1.0), _pt(algorithm="fresh", wall_s=1.0)]
    diff = perf_diff(baseline, current, threshold=0.15)
    assert diff.counts() == {IMPROVED: 1, NEW: 1, MISSING: 1}
    assert diff.exit_code == 0


def test_median_window_absorbs_one_noisy_point():
    baseline = [_pt(wall_s=1.0)]
    noisy = [_pt(wall_s=1.0), _pt(wall_s=1.0), _pt(wall_s=5.0),
             _pt(wall_s=1.0), _pt(wall_s=1.1)]
    # Median of the last 3 points (5.0, 1.0, 1.1) is 1.1: unchanged.
    assert perf_diff(baseline, noisy, window=3).exit_code == 0
    # Window 1 keeps only the last point (1.1): still fine...
    assert perf_diff(baseline, noisy, window=1).exit_code == 0
    # ...but a window-1 diff against the spike itself regresses.
    assert perf_diff(baseline, noisy[:3], window=1).exit_code == 1


def test_points_without_wall_s_are_ignored():
    current = [dict(_pt(), wall_s=None)]
    diff = perf_diff([_pt(wall_s=1.0)], current)
    assert diff.counts() == {MISSING: 1}


def test_perf_diff_validates_inputs():
    with pytest.raises(ValueError, match="threshold"):
        perf_diff([], [], threshold=-0.1)
    with pytest.raises(ValueError, match="window"):
        perf_diff([], [], window=0)


def test_to_dict_shape():
    diff = perf_diff([_pt(wall_s=1.0)], [_pt(wall_s=3.0)])
    data = diff.to_dict()
    assert data["regression"] is True
    assert data["counts"] == {REGRESSED: 1}
    (entry,) = data["entries"]
    assert set(entry["key"]) == set(KEY_FIELDS)
    assert entry["status"] == REGRESSED
    assert entry["delta"] == pytest.approx(2.0)
    json.dumps(data)   # must be JSON-serializable as-is


# -- loading -----------------------------------------------------------------


def test_load_points_trajectory_and_bare_list(tmp_path):
    points = [_pt()]
    wrapped = tmp_path / "traj.json"
    wrapped.write_text(json.dumps({"points": points}))
    bare = tmp_path / "bare.json"
    bare.write_text(json.dumps(points))
    assert load_points(wrapped) == points
    assert load_points(bare) == points


def test_load_points_reads_a_trace_file(tmp_path):
    manifest = obs.RunManifest(
        command="run", seed=1,
        scenario={"users": 60, "scale": "small"},
        algorithm="approAlg",
        config={"workers": 2},
        wall_s=1.5,
    )
    path = obs.write_trace(
        tmp_path / "t.jsonl", manifest, spans=[],
        metrics={"counters": {}, "gauges": {}, "histograms": {}},
    )
    (point,) = load_points(path)
    assert point == {
        "scenario": "run:users=60",
        "algorithm": "approAlg",
        "workers": 2,
        "scale": "small",
        "wall_s": 1.5,
    }


def test_load_points_rejects_garbage(tmp_path):
    path = tmp_path / "garbage.txt"
    path.write_text("definitely {{{ not json\n")
    with pytest.raises(ValueError, match="neither"):
        load_points(path)


def test_perf_diff_paths_missing_file(tmp_path):
    with pytest.raises(FileNotFoundError):
        perf_diff_paths(tmp_path / "nope.json", tmp_path / "nope2.json")


def test_perf_diff_paths_end_to_end(tmp_path):
    baseline = tmp_path / "base.json"
    current = tmp_path / "cur.json"
    baseline.write_text(json.dumps({"points": [_pt(wall_s=1.0)]}))
    current.write_text(json.dumps({"points": [_pt(wall_s=1.05)]}))
    diff = perf_diff_paths(baseline, current, threshold=0.15)
    assert diff.exit_code == 0
    current.write_text(json.dumps({"points": [_pt(wall_s=2.0)]}))
    assert perf_diff_paths(baseline, current, threshold=0.15).exit_code == 1
