"""Tests for SNR / data-rate link budget."""

import pytest

from repro.channel.atg import AirToGroundChannel
from repro.channel.link import (
    LinkBudget,
    noise_power_dbm,
    shannon_rate_bps,
    snr_db,
    snr_linear,
)
from repro.channel.presets import URBAN
from repro.geometry.point import Point3D


class TestNoisePower:
    def test_180khz_resource_block(self):
        # -174 + 10 log10(180e3) + 7 ~ -114.4 dBm.
        assert noise_power_dbm(180e3, 7.0) == pytest.approx(-114.45, abs=0.05)

    def test_scales_with_bandwidth(self):
        assert noise_power_dbm(2 * 180e3) - noise_power_dbm(180e3) == pytest.approx(
            3.01, abs=0.01
        )

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            noise_power_dbm(0.0)


class TestSnr:
    def test_snr_db_formula(self):
        assert snr_db(36.0, 3.0, 100.0, -114.0) == pytest.approx(53.0)

    def test_linear_consistent(self):
        assert snr_linear(36.0, 3.0, 100.0, -114.0) == pytest.approx(10 ** 5.3)


class TestShannonRate:
    def test_zero_snr_zero_rate(self):
        assert shannon_rate_bps(0.0, 180e3) == 0.0

    def test_snr_one_gives_bandwidth(self):
        assert shannon_rate_bps(1.0, 180e3) == pytest.approx(180e3)

    def test_rejects_negative_snr(self):
        with pytest.raises(ValueError):
            shannon_rate_bps(-0.1)

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            shannon_rate_bps(1.0, 0.0)


class TestLinkBudget:
    def make(self) -> LinkBudget:
        return LinkBudget(
            channel=AirToGroundChannel(URBAN),
            tx_power_dbm=36.0,
            antenna_gain_db=3.0,
        )

    def test_rate_decreases_with_distance(self):
        lb = self.make()
        user = Point3D(0, 0, 0)
        rates = [
            lb.rate_bps(user, Point3D(r, 0, 300.0))
            for r in (50, 200, 500, 1500, 4000)
        ]
        assert rates == sorted(rates, reverse=True)

    def test_paper_scenario_meets_2kbps_within_500m(self):
        """Sanity check for Section IV-A: within R_user = 500 m at 300 m
        altitude the rate is far above the 2 kbps minimum requirement."""
        lb = self.make()
        user = Point3D(0, 0, 0)
        uav = Point3D(400, 0, 300)  # 3-D distance = 500 m
        assert lb.rate_bps(user, uav) > 2_000.0

    def test_max_horizontal_range_consistent(self):
        lb = self.make()
        min_rate = 500e3  # demanding enough to make range finite
        r = lb.max_horizontal_range_m(300.0, min_rate, precision_m=1.0)
        user = Point3D(0, 0, 0)
        assert lb.rate_bps(user, Point3D(r, 0, 300.0)) >= min_rate
        assert lb.rate_bps(user, Point3D(r + 3.0, 0, 300.0)) < min_rate

    def test_max_range_zero_when_unreachable(self):
        lb = self.make()
        assert lb.max_horizontal_range_m(300.0, 1e12) == 0.0

    def test_max_range_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            self.make().max_horizontal_range_m(300.0, 0.0)
