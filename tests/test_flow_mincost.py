"""Tests for the Hungarian min-cost assignment, with scipy as oracle."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linear_sum_assignment

from repro.flow.mincost import min_cost_assignment, min_max_assignment


class TestMinCostAssignment:
    def test_empty(self):
        assert min_cost_assignment([]) == ([], 0.0)

    def test_singleton(self):
        assignment, total = min_cost_assignment([[7.0]])
        assert assignment == [0] and total == 7.0

    def test_classic_3x3(self):
        costs = [
            [4.0, 1.0, 3.0],
            [2.0, 0.0, 5.0],
            [3.0, 2.0, 2.0],
        ]
        assignment, total = min_cost_assignment(costs)
        assert total == 5.0  # 1 + 2 + 2
        assert sorted(assignment) == [0, 1, 2]

    def test_rectangular(self):
        costs = [
            [10.0, 1.0, 10.0, 10.0],
            [10.0, 10.0, 2.0, 10.0],
        ]
        assignment, total = min_cost_assignment(costs)
        assert assignment == [1, 2]
        assert total == 3.0

    def test_forbidden_pairings(self):
        inf = math.inf
        costs = [[inf, 1.0], [1.0, inf]]
        assignment, total = min_cost_assignment(costs)
        assert assignment == [1, 0] and total == 2.0

    def test_infeasible_raises(self):
        inf = math.inf
        with pytest.raises(ValueError, match="forbidden"):
            min_cost_assignment([[inf, inf], [1.0, 1.0]])

    def test_validation(self):
        with pytest.raises(ValueError, match="ragged"):
            min_cost_assignment([[1.0, 2.0], [3.0]])
        with pytest.raises(ValueError, match="rows"):
            min_cost_assignment([[1.0], [2.0]])

    @given(st.integers(0, 100_000), st.integers(1, 9), st.integers(0, 5))
    @settings(max_examples=60, deadline=None)
    def test_matches_scipy(self, seed, n, extra_cols):
        rng = np.random.default_rng(seed)
        m = n + extra_cols
        costs = rng.integers(0, 50, size=(n, m)).astype(float)
        assignment, total = min_cost_assignment(costs.tolist())
        rows, cols = linear_sum_assignment(costs)
        expected = costs[rows, cols].sum()
        assert total == pytest.approx(expected)
        # Valid permutation of distinct columns:
        assert len(set(assignment)) == n
        assert total == pytest.approx(
            sum(costs[i][j] for i, j in enumerate(assignment))
        )

    @given(st.integers(0, 100_000), st.integers(1, 7))
    @settings(max_examples=25, deadline=None)
    def test_matches_scipy_with_float_costs(self, seed, n):
        rng = np.random.default_rng(seed)
        costs = rng.uniform(0, 100, size=(n, n))
        _, total = min_cost_assignment(costs.tolist())
        rows, cols = linear_sum_assignment(costs)
        assert total == pytest.approx(costs[rows, cols].sum())


class TestMinMaxAssignment:
    def test_bottleneck_differs_from_sum(self):
        # Sum-optimal pairs (0->0: 1, 1->1: 10) = max 10; bottleneck picks
        # (0->1: 6, 1->0: 6) = max 6.
        costs = [
            [1.0, 6.0],
            [6.0, 10.0],
        ]
        _, total = min_cost_assignment(costs)
        assert total == 11.0  # sum-optimal diagonal 1 + 10, with max 10
        assignment, bottleneck = min_max_assignment(costs)
        assert bottleneck == 6.0
        assert sorted(assignment) == [0, 1]

    def test_min_max_at_most_min_sum_max(self):
        rng = np.random.default_rng(3)
        for _ in range(10):
            n = int(rng.integers(1, 7))
            costs = rng.uniform(0, 100, size=(n, n)).tolist()
            sum_assignment, _ = min_cost_assignment(costs)
            sum_max = max(costs[i][j] for i, j in enumerate(sum_assignment))
            _, bottleneck = min_max_assignment(costs)
            assert bottleneck <= sum_max + 1e-9

    def test_brute_force_small(self):
        from itertools import permutations

        rng = np.random.default_rng(11)
        for _ in range(15):
            n = int(rng.integers(1, 6))
            costs = rng.integers(0, 30, size=(n, n)).astype(float).tolist()
            _, bottleneck = min_max_assignment(costs)
            best = min(
                max(costs[i][perm[i]] for i in range(n))
                for perm in permutations(range(n))
            )
            assert bottleneck == best

    def test_infeasible(self):
        inf = math.inf
        with pytest.raises(ValueError):
            min_max_assignment([[inf]])
