"""Lockstep guard on the BENCH point schema.

``benchmarks/conftest.py`` and ``repro.obs.bench`` each carry a copy of
``POINT_FIELDS`` (the bench suite must not import the package's copy at
collection time and vice versa).  This test pins the two tuples equal
and the null-normalization contract: a merged point always carries every
field explicitly, with ``None`` for metrics the run did not measure —
so adding ``peak_rss_mb`` (or any future field) cannot silently skew
old trajectories.
"""

from __future__ import annotations

from benchmarks.conftest import POINT_FIELDS as CONFTEST_FIELDS
from repro.obs.bench import POINT_FIELDS, normalize_point


def test_point_fields_copies_are_identical():
    assert POINT_FIELDS == CONFTEST_FIELDS


def test_point_fields_include_the_memory_metric():
    assert "peak_rss_mb" in POINT_FIELDS
    assert "bound_pass_ms" in POINT_FIELDS
    assert "gain_matrix_ms" in POINT_FIELDS


def test_normalize_point_nulls_missing_fields():
    point = normalize_point({"scenario": "x", "wall_s": 1.0})
    assert set(POINT_FIELDS) <= set(point)
    assert point["peak_rss_mb"] is None
    assert point["gain_matrix_ms"] is None
    assert point["wall_s"] == 1.0


def test_normalize_point_keeps_unknown_extras():
    point = normalize_point({"scenario": "x", "custom": 7})
    assert point["custom"] == 7
