"""Tests for the workload generators and scenario presets."""

import numpy as np
import pytest

from repro.geometry.area import DisasterArea
from repro.workload.fat_tailed import FatTailedWorkload
from repro.workload.scenarios import (
    SCALES,
    ScenarioConfig,
    build_scenario,
    paper_scenario,
)
from repro.workload.uniform import UniformWorkload

AREA = DisasterArea(3000.0, 3000.0)


class TestUniformWorkload:
    def test_count_and_bounds(self):
        users = UniformWorkload().generate(AREA, 500, seed=0)
        assert len(users) == 500
        for u in users:
            assert AREA.contains_ground(u.ground)

    def test_deterministic(self):
        a = UniformWorkload().generate(AREA, 50, seed=7)
        b = UniformWorkload().generate(AREA, 50, seed=7)
        assert [u.position for u in a] == [u.position for u in b]

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            UniformWorkload().generate(AREA, -1)


class TestFatTailedWorkload:
    def test_count_and_bounds(self):
        users = FatTailedWorkload().generate(AREA, 1000, seed=1)
        assert len(users) == 1000
        for u in users:
            assert AREA.contains_ground(u.ground)

    def test_deterministic(self):
        w = FatTailedWorkload()
        a = w.generate(AREA, 200, seed=5)
        b = w.generate(AREA, 200, seed=5)
        assert [u.position for u in a] == [u.position for u in b]

    def test_fat_tail_property(self):
        """Section IV-A: many users at few places.  Bin users into 36 grid
        cells: the top 20% of cells must hold far more than 20% of users
        (compare against the uniform control)."""
        def top_quintile_share(users):
            counts = np.zeros(36)
            for u in users:
                col = min(int(u.ground.x / 500.0), 5)
                row = min(int(u.ground.y / 500.0), 5)
                counts[row * 6 + col] += 1
            counts.sort()
            return counts[-7:].sum() / counts.sum()

        fat = FatTailedWorkload(num_hotspots=8).generate(AREA, 2000, seed=2)
        uni = UniformWorkload().generate(AREA, 2000, seed=2)
        assert top_quintile_share(fat) > top_quintile_share(uni) + 0.15
        assert top_quintile_share(fat) > 0.5

    def test_background_fraction_one_is_uniformish(self):
        w = FatTailedWorkload(background_fraction=1.0)
        users = w.generate(AREA, 300, seed=3)
        assert len(users) == 300

    def test_validation(self):
        with pytest.raises(ValueError):
            FatTailedWorkload(num_hotspots=0)
        with pytest.raises(ValueError):
            FatTailedWorkload(pareto_alpha=0.0)
        with pytest.raises(ValueError):
            FatTailedWorkload(hotspot_sigma_m=-1.0)
        with pytest.raises(ValueError):
            FatTailedWorkload(background_fraction=1.5)
        with pytest.raises(ValueError):
            FatTailedWorkload().generate(AREA, -5)


class TestScenarios:
    def test_scales_registered(self):
        assert {"paper", "bench", "small"} == set(SCALES)

    def test_paper_scenario_parameters(self):
        p = paper_scenario(num_users=500, num_uavs=8, scale="bench", seed=0)
        assert p.num_users == 500
        assert p.num_uavs == 8
        assert p.num_locations == 36
        assert p.graph.uav_range_m == 600.0
        assert all(50 <= u.capacity <= 300 for u in p.fleet)
        assert all(u.user_range_m == 500.0 for u in p.fleet)
        # All locations at H_uav = 300 m.
        assert all(loc.z == 300.0 for loc in p.graph.locations)

    def test_unknown_scale_rejected(self):
        with pytest.raises(KeyError, match="known"):
            paper_scenario(scale="galactic")

    def test_deterministic_by_seed(self):
        a = paper_scenario(num_users=50, num_uavs=3, scale="small", seed=9)
        b = paper_scenario(num_users=50, num_uavs=3, scale="small", seed=9)
        assert [u.capacity for u in a.fleet] == [u.capacity for u in b.fleet]
        assert [u.position for u in a.graph.users] == [
            u.position for u in b.graph.users
        ]

    def test_config_overrides(self):
        config = ScenarioConfig().with_overrides(num_users=10, num_uavs=2)
        p = build_scenario(config, seed=0)
        assert p.num_users == 10 and p.num_uavs == 2

    def test_altitude_layers(self):
        config = SCALES["small"].with_overrides(
            num_users=40, num_uavs=3, altitude_layers_m=(200.0, 300.0)
        )
        p = build_scenario(config, seed=0)
        assert p.num_locations == 18  # 9 cells x 2 layers
        zs = {loc.z for loc in p.graph.locations}
        assert zs == {200.0, 300.0}
        # Vertically stacked cells (100 m apart) are UAV-to-UAV adjacent.
        assert p.graph.hops_between(0, 9) == 1

    def test_layered_candidates_never_hurt(self):
        from repro.core.approx import appro_alg

        single = build_scenario(
            SCALES["small"].with_overrides(num_users=150, num_uavs=4),
            seed=6,
        )
        layered = build_scenario(
            SCALES["small"].with_overrides(
                num_users=150, num_uavs=4,
                altitude_layers_m=(250.0, 300.0),
            ),
            seed=6,
        )
        served_single = appro_alg(single, s=2, gain_mode="fast").served
        served_layered = appro_alg(layered, s=2, gain_mode="fast").served
        assert served_layered >= 0.9 * served_single

    def test_rate_classes_mixed(self):
        w = FatTailedWorkload(
            rate_classes=((0.8, 2_000.0), (0.2, 2.5e6)),
        )
        users = w.generate(AREA, 1000, seed=4)
        rates = [u.min_rate_bps for u in users]
        video = sum(1 for r in rates if r == 2.5e6)
        assert set(rates) == {2_000.0, 2.5e6}
        assert 120 <= video <= 280  # ~20% +/- sampling noise

    def test_rate_classes_validation(self):
        with pytest.raises(ValueError, match="sum"):
            FatTailedWorkload(rate_classes=((0.5, 1.0),))
        with pytest.raises(ValueError, match="non-negative"):
            FatTailedWorkload(rate_classes=((1.5, 1.0), (-0.5, 1.0)))

    def test_paper_scale_has_more_locations(self):
        paper = SCALES["paper"]
        bench = SCALES["bench"]
        assert (paper.area_length_m / paper.grid_side_m) ** 2 > (
            bench.area_length_m / bench.grid_side_m
        ) ** 2
