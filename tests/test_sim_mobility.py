"""Tests for the mobility / re-deployment extension."""

import numpy as np
import pytest

from repro.core.approx import appro_alg
from repro.sim.mobility import (
    GaussianWalk,
    MobilityTrace,
    compare_policies,
    simulate_mobility,
)
from repro.workload.scenarios import paper_scenario


def planner(problem):
    return appro_alg(problem, s=1, gain_mode="fast").deployment


@pytest.fixture(scope="module")
def problem():
    return paper_scenario(num_users=150, num_uavs=4, scale="small", seed=8)


class TestGaussianWalk:
    def test_zero_sigma_is_static(self):
        walk = GaussianWalk(sigma_m=0.0)
        xy = np.array([[10.0, 20.0], [30.0, 40.0]])
        rng = np.random.default_rng(0)
        out = walk.step(xy, (0.0, 100.0, 0.0, 100.0), rng)
        assert np.allclose(out, xy)

    def test_stays_in_bounds(self):
        walk = GaussianWalk(sigma_m=50.0)
        rng = np.random.default_rng(1)
        xy = rng.uniform(0, 100, size=(200, 2))
        for _ in range(20):
            xy = walk.step(xy, (0.0, 100.0, 0.0, 100.0), rng)
            assert (xy >= 0.0).all() and (xy <= 100.0).all()

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            GaussianWalk(sigma_m=-1.0)


class TestSimulateMobility:
    def test_trace_shape(self, problem):
        trace = simulate_mobility(problem, planner, steps=5, seed=0)
        assert len(trace.served) == 5
        assert trace.policy == "stale"
        assert trace.redeploys == 1
        assert all(0 <= s <= problem.num_users for s in trace.served)

    def test_static_users_static_service(self, problem):
        """With sigma = 0 every step serves the same count."""
        trace = simulate_mobility(
            problem, planner, steps=4,
            mobility=GaussianWalk(sigma_m=0.0), seed=0,
        )
        assert len(set(trace.served)) == 1

    def test_refresh_counts_redeploys(self, problem):
        trace = simulate_mobility(
            problem, planner, steps=9, redeploy_every=3, seed=0,
        )
        assert trace.policy == "refresh/3"
        # Initial plan + re-plans at steps 3 and 6 (step > 0 only).
        assert trace.redeploys == 3

    def test_validation(self, problem):
        with pytest.raises(ValueError):
            simulate_mobility(problem, planner, steps=0)
        with pytest.raises(ValueError):
            simulate_mobility(problem, planner, steps=3, redeploy_every=0)
        with pytest.raises(ValueError):
            simulate_mobility(problem, planner, steps=3,
                              relocation_speed_mps=0.0)
        with pytest.raises(ValueError):
            simulate_mobility(problem, planner, steps=3, step_s=0.0)

    def test_relocation_downtime_counted(self, problem):
        """With a very slow fleet, re-deployments spend steps in transit
        (serving from the old positions meanwhile)."""
        slow = simulate_mobility(
            problem, planner, steps=10, redeploy_every=3,
            relocation_speed_mps=0.5, step_s=60.0, seed=2,
            mobility=GaussianWalk(sigma_m=200.0),
        )
        instant = simulate_mobility(
            problem, planner, steps=10, redeploy_every=3,
            relocation_speed_mps=None, seed=2,
            mobility=GaussianWalk(sigma_m=200.0),
        )
        assert instant.transit_steps == 0
        # Slow fleet: unless every replan is a no-move, transit happens.
        assert slow.transit_steps >= 0
        assert len(slow.served) == len(instant.served) == 10

    def test_fast_fleet_equals_instant(self, problem):
        """A very fast fleet (transit < one step) behaves like the
        instantaneous model."""
        fast = simulate_mobility(
            problem, planner, steps=8, redeploy_every=2,
            relocation_speed_mps=1e9, seed=3,
        )
        instant = simulate_mobility(
            problem, planner, steps=8, redeploy_every=2,
            relocation_speed_mps=None, seed=3,
        )
        assert fast.served == instant.served
        assert fast.transit_steps == 0


class TestComparePolicies:
    def test_refresh_at_least_stale_on_average(self, problem):
        """Re-deployment can only use fresher information; over a strong
        drift it must not lose (tolerance for assignment noise)."""
        stale, refreshed = compare_policies(
            problem,
            planner,
            steps=8,
            redeploy_every=2,
            mobility=GaussianWalk(sigma_m=150.0),
            seed=3,
        )
        assert refreshed.mean_served >= stale.mean_served * 0.95
        assert refreshed.redeploys > stale.redeploys

    def test_trace_helpers(self):
        t = MobilityTrace(policy="x", served=[2, 4])
        assert t.mean_served == 3.0
        assert t.final_served == 4
        assert MobilityTrace(policy="y").mean_served == 0.0
