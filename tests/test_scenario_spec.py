"""Tests for the declarative ScenarioSpec (schema, JSON, presets)."""

import dataclasses

import pytest

from repro.scenario.spec import (
    PRESETS,
    ScenarioSpec,
    SpecError,
    get_preset,
    preset_names,
)
from repro.workload.scenarios import SCALES, paper_scenario


class TestSchemaValidation:
    def test_defaults_are_valid(self):
        spec = ScenarioSpec()
        assert spec.scale == "bench"
        assert spec.algorithm == "approAlg"
        assert spec.validate is True

    def test_unknown_scale_rejected(self):
        with pytest.raises(SpecError, match="unknown scale"):
            ScenarioSpec(scale="galactic")

    def test_unknown_environment_rejected(self):
        with pytest.raises(SpecError, match="unknown environment"):
            ScenarioSpec(environment="underwater")

    def test_unknown_workload_rejected(self):
        with pytest.raises(SpecError, match="unknown workload"):
            ScenarioSpec(workload="bursty")

    def test_workload_params_require_workload(self):
        with pytest.raises(SpecError, match="workload_params"):
            ScenarioSpec(workload_params={"num_hotspots": 3})

    @pytest.mark.parametrize("field,value", [
        ("num_users", 0),
        ("num_users", -5),
        ("num_users", 2.5),
        ("num_users", True),
        ("num_uavs", "eight"),
        ("grid_side_m", -100.0),
        ("altitude_m", 0),
        ("workers", 0),
        ("seed", "seven"),
        ("seed", True),
        ("bound_prune", "yes"),
        ("validate", 1),
        ("algorithm_params", ["s", 2]),
        ("name", ""),
    ])
    def test_invalid_field_values_rejected(self, field, value):
        with pytest.raises(SpecError):
            ScenarioSpec(**{field: value})

    def test_capacity_bounds_ordered(self):
        with pytest.raises(SpecError, match="capacity_min"):
            ScenarioSpec(capacity_min=300, capacity_max=100)
        ScenarioSpec(capacity_min=100, capacity_max=300)  # fine

    def test_altitude_layers_normalised_to_tuple(self):
        spec = ScenarioSpec(altitude_layers_m=[200.0, 300.0])
        assert spec.altitude_layers_m == (200.0, 300.0)

    def test_with_overrides_revalidates(self):
        spec = ScenarioSpec()
        with pytest.raises(SpecError):
            spec.with_overrides(num_users=-1)
        assert spec.with_overrides(num_users=50).num_users == 50

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ScenarioSpec().seed = 99


class TestJsonRoundTrip:
    def test_default_round_trip(self):
        spec = ScenarioSpec()
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_fully_loaded_round_trip(self):
        spec = ScenarioSpec(
            name="kitchen-sink",
            scale="small",
            num_users=250,
            num_uavs=5,
            grid_side_m=900.0,
            altitude_m=250.0,
            environment="dense-urban",
            workload="fat-tailed",
            workload_params={"num_hotspots": 4},
            capacity_min=50,
            capacity_max=280,
            seed=123,
            algorithm="MCS",
            algorithm_params={},
            workers=2,
            bound_prune=True,
            validate=False,
        )
        again = ScenarioSpec.from_json(spec.to_json())
        assert again == spec
        assert again.workload_params == {"num_hotspots": 4}

    def test_altitude_layers_round_trip(self):
        spec = ScenarioSpec(altitude_layers_m=(200.0, 350.0))
        again = ScenarioSpec.from_json(spec.to_json())
        assert again.altitude_layers_m == (200.0, 350.0)

    def test_header_present(self):
        data = ScenarioSpec().to_dict()
        assert data["kind"] == "scenario-spec"
        assert data["format"] == 1

    def test_unknown_field_rejected(self):
        data = ScenarioSpec().to_dict()
        data["turbo"] = True
        with pytest.raises(SpecError, match="unknown spec field.*turbo"):
            ScenarioSpec.from_dict(data)

    def test_wrong_kind_rejected(self):
        data = ScenarioSpec().to_dict()
        data["kind"] = "deployment"
        with pytest.raises(SpecError, match="kind"):
            ScenarioSpec.from_dict(data)

    def test_wrong_format_rejected(self):
        data = ScenarioSpec().to_dict()
        data["format"] = 99
        with pytest.raises(SpecError, match="format"):
            ScenarioSpec.from_dict(data)

    def test_invalid_value_rejected_on_load(self):
        data = ScenarioSpec().to_dict()
        data["num_users"] = -10
        with pytest.raises(SpecError):
            ScenarioSpec.from_dict(data)

    def test_malformed_json_rejected(self):
        with pytest.raises(SpecError, match="not valid JSON"):
            ScenarioSpec.from_json("{nope")

    def test_save_load_file(self, tmp_path):
        spec = ScenarioSpec(name="disk", seed=5)
        path = tmp_path / "spec.json"
        spec.save(path)
        assert ScenarioSpec.load(path) == spec


class TestDerivedViews:
    def test_to_config_applies_only_explicit_overrides(self):
        spec = ScenarioSpec(scale="small", num_users=123)
        config = spec.to_config()
        assert config.num_users == 123
        assert config.num_uavs == SCALES["small"].num_uavs

    def test_build_matches_paper_scenario(self):
        """The spec's scenario stream is bit-identical to the historical
        paper_scenario path for the same knobs."""
        spec = ScenarioSpec(scale="small", num_users=200, num_uavs=5, seed=11)
        ours = spec.build()
        legacy = paper_scenario(
            num_users=200, num_uavs=5, scale="small", seed=11
        )
        assert [u.capacity for u in ours.fleet] == [
            u.capacity for u in legacy.fleet
        ]
        assert [
            (u.position.x, u.position.y) for u in ours.graph.users
        ] == [
            (u.position.x, u.position.y) for u in legacy.graph.users
        ]

    def test_workload_resolved_from_name(self):
        from repro.workload.uniform import UniformWorkload

        spec = ScenarioSpec(workload="uniform")
        assert isinstance(spec.to_config().workload, UniformWorkload)

    def test_derived_seed_is_stable_and_labelled(self):
        spec = ScenarioSpec(seed=7)
        assert spec.derived_seed("faults") == spec.derived_seed("faults")
        assert spec.derived_seed("faults") != spec.derived_seed("relocation")
        assert spec.derived_seed("faults") != 7

    def test_scenario_key_ignores_algorithm(self):
        a = ScenarioSpec(seed=3, algorithm="approAlg", workers=2)
        b = ScenarioSpec(seed=3, algorithm="MCS")
        assert a.scenario_key() == b.scenario_key()

    def test_scenario_key_distinguishes_scenarios(self):
        assert (
            ScenarioSpec(seed=3).scenario_key()
            != ScenarioSpec(seed=4).scenario_key()
        )
        assert (
            ScenarioSpec(num_users=100).scenario_key()
            != ScenarioSpec(num_users=200).scenario_key()
        )


class TestPresets:
    def test_all_presets_valid_and_named(self):
        for name in preset_names():
            assert get_preset(name).name == name

    def test_preset_round_trips(self):
        for name in preset_names():
            spec = get_preset(name)
            assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_unknown_preset_lists_known(self):
        with pytest.raises(KeyError, match="demo-small"):
            get_preset("nope")

    def test_demo_small_builds(self):
        problem = get_preset("demo-small").build()
        assert problem.num_users == 300
        assert problem.num_uavs == 6

    def test_presets_cover_all_scales(self):
        assert {p.scale for p in PRESETS.values()} == set(SCALES)
