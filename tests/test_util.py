"""Tests for util helpers: rng, tables, timing."""

import time

import numpy as np
import pytest

from repro.util.rng import ensure_rng, spawn_rngs
from repro.util.tables import format_markdown_table, format_table
from repro.util.timing import Stopwatch


class TestRng:
    def test_int_seed_deterministic(self):
        a = ensure_rng(5).integers(0, 1000, size=10)
        b = ensure_rng(5).integers(0, 1000, size=10)
        assert list(a) == list(b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert ensure_rng(g) is g

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_spawn_independent_streams(self):
        children = spawn_rngs(7, 3)
        draws = [c.integers(0, 10**9) for c in children]
        assert len(set(draws)) == 3

    def test_spawn_deterministic(self):
        a = [c.integers(0, 10**9) for c in spawn_rngs(7, 4)]
        b = [c.integers(0, 10**9) for c in spawn_rngs(7, 4)]
        assert a == b

    def test_spawn_prefix_stable(self):
        """Adding sweep points must not perturb earlier points' streams."""
        a = [c.integers(0, 10**9) for c in spawn_rngs(7, 2)]
        b = [c.integers(0, 10**9) for c in spawn_rngs(7, 5)][:2]
        assert a == b

    def test_spawn_rejects_negative(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestTables:
    def test_alignment(self):
        out = format_table(["a", "bbbb"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_title(self):
        out = format_table(["x"], [[1]], title="hello")
        assert out.splitlines()[0] == "hello"

    def test_float_formatting(self):
        out = format_table(["x"], [[3.14159265]])
        assert "3.142" in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [[1]])

    def test_markdown(self):
        md = format_markdown_table(["a", "b"], [[1, 2]])
        lines = md.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"


class TestStopwatch:
    def test_context_manager(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.01)
        assert sw.elapsed >= 0.01
        assert not sw.running

    def test_accumulates(self):
        sw = Stopwatch()
        with sw:
            pass
        first = sw.elapsed
        with sw:
            time.sleep(0.005)
        assert sw.elapsed >= first

    def test_misuse_raises(self):
        sw = Stopwatch()
        with pytest.raises(RuntimeError):
            sw.stop()
        sw.start()
        with pytest.raises(RuntimeError):
            sw.start()
        sw.stop()

    def test_reset(self):
        sw = Stopwatch()
        with sw:
            pass
        sw.reset()
        assert sw.elapsed == 0.0
