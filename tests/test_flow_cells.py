"""Differential tests for the capacitated demand-cell flow engine.

:class:`repro.flow.bipartite.CellAssignment` claims that after every
``open`` the maintained cell->station flow is an exact maximum.  The
reference here is an independent from-scratch :class:`repro.flow.dinic.Dinic`
solve of the same network (source -(demand)-> cell -> station
-(capacity)-> sink), checked after *every* station open on seeded random
instances.  The journal semantics (``try_open``/``rollback``, warm-start
forks) are exercised against snapshot equality, and
:func:`repro.flow.bipartite.new_engine_for` must dispatch singleton-cell
graphs back to the bitset user engine — the dispatch half of the
bit-identity guarantee.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.flow.bipartite import (
    CellAssignment,
    IncrementalAssignment,
    new_engine_for,
)
from repro.flow.dinic import Dinic
from repro.workload.aggregate import aggregate_problem
from repro.workload.scenarios import paper_scenario


def _reference_max_flow(demands, stations) -> int:
    """From-scratch Dinic max flow over the full cell-arc network.

    ``stations`` is a list of (covered_cells, capacity) pairs.
    """
    n = len(demands)
    m = len(stations)
    source, sink = n + m, n + m + 1
    net = Dinic(n + m + 2)
    for c, demand in enumerate(demands):
        net.add_edge(source, c, int(demand))
    for j, (cover, capacity) in enumerate(stations):
        for c in cover:
            net.add_edge(int(c), n + j, int(demands[int(c)]))
        net.add_edge(n + j, sink, int(capacity))
    return net.max_flow(source, sink)


def _random_instance(rng):
    n = int(rng.integers(3, 12))
    demands = rng.integers(1, 6, size=n)
    num_stations = int(rng.integers(1, 7))
    stations = []
    for _ in range(num_stations):
        size = int(rng.integers(0, n + 1))
        cover = np.sort(rng.choice(n, size=size, replace=False))
        capacity = int(rng.integers(0, 15))
        stations.append((cover, capacity))
    return demands, stations


@pytest.mark.parametrize("seed", range(40))
def test_incremental_flow_matches_dinic(seed):
    rng = np.random.default_rng(seed)
    demands, stations = _random_instance(rng)
    engine = CellAssignment(demands)
    total = 0
    for j, (cover, capacity) in enumerate(stations):
        gain = engine.open(f"s{j}", cover, capacity)
        assert gain >= 0
        total += gain
        reference = _reference_max_flow(demands, stations[: j + 1])
        assert engine.served_count == reference, (
            f"incremental flow {engine.served_count} != Dinic {reference} "
            f"after station {j} (seed {seed})"
        )
    assert engine.served_count == total


@pytest.mark.parametrize("seed", range(10))
def test_flows_respect_demands_and_capacities(seed):
    rng = np.random.default_rng(100 + seed)
    demands, stations = _random_instance(rng)
    engine = CellAssignment(demands)
    for j, (cover, capacity) in enumerate(stations):
        engine.open(f"s{j}", cover, capacity)
    flows = engine.flows()
    per_cell = np.zeros(len(demands), dtype=np.int64)
    for j, (cover, capacity) in enumerate(stations):
        station_flow = flows[f"s{j}"]
        assert sum(station_flow.values()) <= capacity
        allowed = set(int(c) for c in cover)
        for c, units in station_flow.items():
            assert units >= 1
            assert c in allowed
            per_cell[c] += units
    assert (per_cell <= demands).all()
    assert int(per_cell.sum()) == engine.served_count


def test_try_open_rollback_restores_state():
    rng = np.random.default_rng(7)
    demands, stations = _random_instance(rng)
    engine = CellAssignment(demands)
    for j, (cover, capacity) in enumerate(stations[:-1]):
        engine.open(f"s{j}", cover, capacity)
    before = (engine.served_count, engine.flows(), engine.stations())
    cover, capacity = stations[-1]
    engine.try_open("probe", cover, capacity)
    engine.rollback()
    assert (engine.served_count, engine.flows(), engine.stations()) == before
    # The rolled-back station can be re-opened with the same result.
    gain = engine.open("probe", cover, capacity)
    reference = _reference_max_flow(demands, stations)
    assert engine.served_count == before[0] + gain == reference


def test_fork_rollback_and_release():
    demands = [3, 2, 4]
    engine = CellAssignment(demands)
    engine.open("base", [0, 1], 4)
    base_state = (engine.served_count, engine.flows())
    engine.fork()
    engine.open("fork-a", [1, 2], 5)
    assert engine.served_count > base_state[0]
    engine.rollback_fork()
    assert (engine.served_count, engine.flows()) == base_state
    engine.fork()
    engine.open("fork-b", [2], 2)
    kept = (engine.served_count, engine.flows())
    engine.release_fork()
    assert (engine.served_count, engine.flows()) == kept
    with pytest.raises(RuntimeError):
        engine.rollback_fork()


def test_pending_station_guards():
    engine = CellAssignment([2, 2])
    engine.try_open("a", [0], 1)
    with pytest.raises(RuntimeError):
        engine.try_open("b", [1], 1)
    with pytest.raises(RuntimeError):
        engine.fork()
    engine.commit()
    with pytest.raises(ValueError):
        engine.try_open("a", [1], 1)  # duplicate name
    with pytest.raises(IndexError):
        engine.try_open("c", [5], 1)  # cell out of range


def test_direct_gain_bound_upper_bounds_gain():
    rng = np.random.default_rng(21)
    demands, stations = _random_instance(rng)
    engine = CellAssignment(demands)
    for j, (cover, capacity) in enumerate(stations):
        bound = engine.direct_gain_bound(cover, capacity)
        gain = engine.open(f"s{j}", cover, capacity)
        # The direct phase alone drains exactly the bound; augmentation
        # can only add, and capacity caps everything.
        assert bound <= gain <= capacity


def test_rejects_invalid_demands():
    with pytest.raises(ValueError):
        CellAssignment([1, 0, 2])
    with pytest.raises(ValueError):
        CellAssignment(np.zeros((2, 2), dtype=np.int64))


class TestEngineDispatch:
    def test_per_user_graph_gets_bitset_engine(self):
        problem = paper_scenario(num_users=30, num_uavs=2, scale="small",
                                 seed=1)
        engine = new_engine_for(problem.graph)
        assert isinstance(engine, IncrementalAssignment)

    def test_singleton_cells_get_bitset_engine(self):
        problem = paper_scenario(num_users=30, num_uavs=2, scale="small",
                                 seed=1)
        cell_problem = aggregate_problem(problem)  # singletons
        engine = new_engine_for(cell_problem.graph)
        assert isinstance(engine, IncrementalAssignment)
        assert engine.num_users == 30

    def test_coarse_cells_get_cell_engine(self):
        problem = paper_scenario(num_users=200, num_uavs=3, scale="small",
                                 seed=2)
        cell_problem = aggregate_problem(problem, 300.0)
        demands = cell_problem.graph.cell_demands
        assert int(demands.max()) > 1  # the aggregation actually merged
        engine = new_engine_for(cell_problem.graph)
        assert isinstance(engine, CellAssignment)
        assert engine.num_users == demands.size
