"""End-to-end integration tests across modules: scenario building, all
algorithms, validation, and the paper's qualitative claims at small scale."""


from repro.core.approx import appro_alg
from repro.core.assignment import max_served
from repro.core.ratio import approximation_ratio
from repro.network.validate import validate_deployment
from repro.sim.runner import ALGORITHMS, run_algorithm
from repro.util.tables import format_table


class TestEndToEnd:
    def test_all_algorithms_on_small_scenario(self, small_scenario):
        records = {}
        for name in ALGORITHMS:
            params = {"s": 2, "gain_mode": "fast"} if name == "approAlg" else {}
            records[name] = run_algorithm(small_scenario, name, **params)
        # The runner validated every deployment; basic ordering checks:
        assert records["approAlg"].served >= records["RandomConnected"].served
        assert records["Unconstrained"].served >= max(
            rec.served
            for name, rec in records.items()
            if name != "Unconstrained"
        )

    def test_appro_alg_end_to_end_moderate(self, bench_scenario):
        result = appro_alg(
            bench_scenario, s=2, max_anchor_candidates=6, gain_mode="fast"
        )
        validate_deployment(
            bench_scenario.graph, bench_scenario.fleet, result.deployment
        )
        # The declared served count must equal an independent recount.
        recount = max_served(
            bench_scenario.graph,
            bench_scenario.fleet,
            result.deployment.placements,
        )
        assert result.served == recount
        # Theoretical ratio exists and the solution is non-trivial.
        assert approximation_ratio(bench_scenario.num_uavs, 2) > 0
        assert result.served > 0.3 * bench_scenario.num_users

    def test_more_uavs_serve_more(self):
        """Fig. 4's qualitative shape at small scale."""
        from repro.workload.scenarios import paper_scenario

        served = []
        for k in (2, 4, 6):
            problem = paper_scenario(
                num_users=250, num_uavs=k, scale="small", seed=17
            )
            result = appro_alg(problem, s=2, gain_mode="fast")
            served.append(result.served)
        assert served[0] <= served[1] <= served[2]

    def test_more_users_more_served(self):
        """Fig. 5's qualitative shape at small scale."""
        from repro.workload.scenarios import paper_scenario

        served = []
        for n in (100, 200, 300):
            problem = paper_scenario(
                num_users=n, num_uavs=5, scale="small", seed=23
            )
            served.append(appro_alg(problem, s=2, gain_mode="fast").served)
        assert served[0] <= served[1] <= served[2]

    def test_s_improves_solution(self, small_scenario):
        """Fig. 6(a)'s qualitative shape: larger s never hurts much and
        typically helps (monotone up to small noise)."""
        s1 = appro_alg(small_scenario, s=1, gain_mode="fast").served
        s2 = appro_alg(small_scenario, s=2, gain_mode="fast").served
        s3 = appro_alg(small_scenario, s=3, gain_mode="fast").served
        assert s2 >= 0.95 * s1
        assert s3 >= 0.95 * s1

    def test_loads_respect_heterogeneous_capacities(self, small_scenario):
        result = appro_alg(small_scenario, s=2, gain_mode="fast")
        for k, load in result.deployment.loads().items():
            assert load <= small_scenario.fleet[k].capacity

    def test_table_rendering_of_real_run(self, small_scenario):
        rec = run_algorithm(small_scenario, "MCS")
        table = format_table(
            ["algorithm", "served"], [[rec.algorithm, rec.served]]
        )
        assert "MCS" in table
