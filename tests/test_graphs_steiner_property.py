"""Property tests of the connection step against networkx's Steiner-tree
approximation on random connected graphs (beyond the fixed-grid unit
tests)."""

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.adjacency import Graph
from repro.graphs.bfs import is_connected
from repro.graphs.steiner import connection_cost_lower_bound, steiner_connect


def random_connected_graph(seed: int, n: int, extra_edges: int) -> Graph:
    rng = np.random.default_rng(seed)
    g = Graph(n)
    order = rng.permutation(n)
    for a, b in zip(order, order[1:]):
        g.add_edge(int(a), int(b))
    for _ in range(extra_edges):
        a, b = rng.integers(0, n, size=2)
        if a != b and not g.has_edge(int(a), int(b)):
            g.add_edge(int(a), int(b))
    return g


@given(
    st.integers(0, 100_000),
    st.integers(3, 25),
    st.integers(0, 30),
    st.integers(2, 6),
)
@settings(max_examples=50, deadline=None)
def test_steiner_connect_quality_and_validity(seed, n, extra, num_terms):
    g = random_connected_graph(seed, n, extra)
    rng = np.random.default_rng(seed + 1)
    terminals = [int(t) for t in rng.choice(n, size=min(num_terms, n),
                                            replace=False)]

    nodes, edges = steiner_connect(g, terminals)

    # Validity: contains terminals, induces a connected subgraph, and the
    # expanded paths use real edges.
    assert set(terminals) <= nodes
    assert is_connected(g, nodes)
    for _u, _v, path in edges:
        for a, b in zip(path, path[1:]):
            assert g.has_edge(a, b)

    # Lower bound validity.
    assert connection_cost_lower_bound(g, terminals) <= len(nodes)

    # Quality: MST-of-shortest-paths is a 2-approximation of the Steiner
    # tree in edge weight; in node count a generous 2x + s cushion vs
    # networkx's own approximation must always hold.
    nxg = nx.Graph((u, v) for u, v, _ in g.edges())
    reference = nx.algorithms.approximation.steiner_tree(
        nxg, set(terminals)
    ).number_of_nodes()
    reference = max(reference, len(set(terminals)))
    assert len(nodes) <= 2 * reference + len(set(terminals))


@given(st.integers(0, 100_000), st.integers(2, 20))
@settings(max_examples=30, deadline=None)
def test_adjacent_terminal_set_needs_no_relays(seed, n):
    """If the terminals already induce a connected subgraph, no relays are
    added."""
    g = random_connected_graph(seed, n, n)
    # Grow a connected terminal set by BFS.
    rng = np.random.default_rng(seed)
    start = int(rng.integers(0, n))
    terminals = {start}
    frontier = list(g.neighbours(start))
    while frontier and len(terminals) < min(5, n):
        terminals.add(frontier.pop(0))
        frontier = [
            w
            for t in terminals
            for w in g.neighbours(t)
            if w not in terminals
        ]
    nodes, _ = steiner_connect(g, sorted(terminals))
    assert nodes == terminals
