"""Tests for free-space pathloss (UAV-to-UAV channel)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.channel.constants import SPEED_OF_LIGHT
from repro.channel.freespace import FreeSpaceChannel, free_space_pathloss_db


class TestFreeSpacePathloss:
    def test_textbook_value(self):
        # FSPL at 1 km, 2 GHz: 20 log10(4 pi f d / c) ~ 98.46 dB.
        pl = free_space_pathloss_db(1000.0, 2e9)
        expected = 20 * math.log10(4 * math.pi * 2e9 * 1000 / SPEED_OF_LIGHT)
        assert pl == pytest.approx(expected)
        assert pl == pytest.approx(98.46, abs=0.05)

    def test_plus_6db_per_distance_doubling(self):
        pl1 = free_space_pathloss_db(500.0, 2e9)
        pl2 = free_space_pathloss_db(1000.0, 2e9)
        assert pl2 - pl1 == pytest.approx(20 * math.log10(2), abs=1e-9)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            free_space_pathloss_db(0.0, 2e9)
        with pytest.raises(ValueError):
            free_space_pathloss_db(100.0, 0.0)

    @given(st.floats(1.0, 1e6), st.floats(1e8, 1e11))
    def test_monotone_in_distance_and_frequency(self, d, f):
        assert free_space_pathloss_db(d * 2, f) > free_space_pathloss_db(d, f)
        assert free_space_pathloss_db(d, f * 2) > free_space_pathloss_db(d, f)


class TestFreeSpaceChannel:
    def test_max_range_inverts_pathloss(self):
        ch = FreeSpaceChannel(carrier_hz=2e9)
        for budget in (80.0, 100.0, 120.0):
            r = ch.max_range_m(budget)
            assert ch.pathloss_db(r) == pytest.approx(budget, abs=1e-6)

    def test_max_range_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            FreeSpaceChannel().max_range_m(0.0)
