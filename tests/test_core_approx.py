"""Tests for Algorithm 2 end to end (repro.core.approx)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.approx import appro_alg
from repro.core.exact import exact_optimum_value
from repro.core.problem import ProblemInstance
from repro.core.ratio import approximation_ratio
from repro.network.coverage import CoverageGraph
from repro.network.fleet import heterogeneous_fleet
from repro.network.users import users_from_points
from repro.network.validate import validate_deployment
from tests.conftest import make_line_instance


def random_tiny_problem(seed: int) -> ProblemInstance:
    """3x3 grid, few users, 3-4 heterogeneous UAVs — small enough for the
    brute-force optimum."""
    rng = np.random.default_rng(seed)
    from repro.geometry.area import DisasterArea

    area = DisasterArea(1500.0, 1500.0)
    grid = area.hovering_grid(500.0, 300.0)
    n_users = int(rng.integers(4, 16))
    points = rng.uniform(0, 1500.0, size=(n_users, 2))
    users = users_from_points([(float(x), float(y)) for x, y in points])
    graph = CoverageGraph(users=users, locations=list(grid.centers),
                          uav_range_m=600.0)
    k = int(rng.integers(2, 5))
    fleet = heterogeneous_fleet(k, capacity_min=1, capacity_max=6, seed=rng)
    return ProblemInstance(graph=graph, fleet=fleet)


class TestApproAlgBasics:
    def test_feasible_on_line(self):
        problem = make_line_instance()
        result = appro_alg(problem, s=2)
        validate_deployment(problem.graph, problem.fleet, result.deployment)
        assert result.served == result.deployment.served_count

    def test_served_positive_when_users_coverable(self):
        problem = make_line_instance()
        assert appro_alg(problem, s=2).served > 0

    def test_s_clamped_to_k(self):
        problem = make_line_instance(num_locations=4, users_per_location=2,
                                     capacities=(2, 2))
        result = appro_alg(problem, s=5)  # clamped to K = 2
        validate_deployment(problem.graph, problem.fleet, result.deployment)

    def test_rejects_bad_s(self):
        problem = make_line_instance()
        with pytest.raises(ValueError):
            appro_alg(problem, s=0)

    def test_stats_add_up(self):
        problem = make_line_instance()
        result = appro_alg(problem, s=2)
        st_ = result.stats
        assert st_.subsets_bound_skipped == 0  # pruning is opt-in
        assert st_.subsets_total == st_.subsets_pruned + st_.subsets_evaluated

    def test_stats_add_up_with_bound_prune(self):
        problem = make_line_instance()
        result = appro_alg(problem, s=2, bound_prune=True)
        st_ = result.stats
        assert st_.subsets_total == (
            st_.subsets_pruned + st_.subsets_bound_skipped
            + st_.subsets_evaluated
        )

    def test_anchor_pool_restriction(self):
        problem = make_line_instance(num_locations=6, users_per_location=2)
        full = appro_alg(problem, s=2)
        restricted = appro_alg(problem, s=2, max_anchor_candidates=3)
        assert restricted.stats.subsets_total <= full.stats.subsets_total
        validate_deployment(problem.graph, problem.fleet,
                            restricted.deployment)

    def test_explicit_anchor_candidates(self):
        problem = make_line_instance(num_locations=5, users_per_location=2)
        result = appro_alg(problem, s=2, anchor_candidates=[1, 2, 3])
        assert set(result.anchors) <= {1, 2, 3}

    def test_bad_anchor_candidates_rejected(self):
        problem = make_line_instance()
        with pytest.raises(IndexError):
            appro_alg(problem, s=1, anchor_candidates=[99])
        with pytest.raises(ValueError, match="pool"):
            appro_alg(problem, s=3, anchor_candidates=[0, 1])

    def test_progress_callback(self):
        problem = make_line_instance(num_locations=4, users_per_location=2,
                                     capacities=(2, 2, 2))
        calls = []
        appro_alg(problem, s=2, progress=lambda d, t: calls.append((d, t)))
        assert calls, "progress callback never invoked"
        done, total = calls[-1]
        assert done == total == len(calls)


class TestFeasibilityProperties:
    @given(st.integers(0, 10_000))
    @settings(max_examples=12, deadline=None)
    def test_always_feasible(self, seed):
        problem = random_tiny_problem(seed)
        for gain_mode in ("exact", "fast"):
            result = appro_alg(problem, s=2, gain_mode=gain_mode)
            validate_deployment(problem.graph, problem.fleet,
                                result.deployment)

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_theorem1_ratio_empirically(self, seed):
        """The delivered solution must meet the Theorem 1 guarantee against
        the exact optimum (it is usually far better)."""
        problem = random_tiny_problem(seed)
        opt = exact_optimum_value(problem)
        result = appro_alg(problem, s=2, gain_mode="exact")
        ratio = approximation_ratio(problem.num_uavs, 2)
        assert result.served >= np.floor(ratio * opt)

    @given(st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_fast_close_to_exact(self, seed):
        problem = random_tiny_problem(seed)
        exact = appro_alg(problem, s=2, gain_mode="exact").served
        fast = appro_alg(problem, s=2, gain_mode="fast").served
        assert fast >= 0.75 * exact

    @given(st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_augment_leftover_never_hurts(self, seed):
        problem = random_tiny_problem(seed)
        strict = appro_alg(problem, s=2, augment_leftover=False).served
        augmented = appro_alg(problem, s=2, augment_leftover=True).served
        assert augmented >= strict


class TestClusteredInstances:
    """A second random-instance family: hotspot-clustered users (the
    evaluation's actual distribution) instead of uniform."""

    @staticmethod
    def clustered_problem(seed: int) -> ProblemInstance:
        from repro.geometry.area import DisasterArea
        from repro.workload.fat_tailed import FatTailedWorkload

        rng = np.random.default_rng(seed)
        area = DisasterArea(1500.0, 1500.0)
        grid = area.hovering_grid(500.0, 300.0)
        workload = FatTailedWorkload(
            num_hotspots=int(rng.integers(1, 4)),
            hotspot_sigma_m=150.0,
            background_fraction=0.1,
        )
        users = workload.generate(area, int(rng.integers(6, 20)), rng)
        graph = CoverageGraph(users=users, locations=list(grid.centers),
                              uav_range_m=600.0)
        fleet = heterogeneous_fleet(int(rng.integers(2, 5)),
                                    capacity_min=1, capacity_max=8, seed=rng)
        return ProblemInstance(graph=graph, fleet=fleet)

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_feasible_and_meets_ratio(self, seed):
        problem = self.clustered_problem(seed)
        result = appro_alg(problem, s=2, gain_mode="exact")
        validate_deployment(problem.graph, problem.fleet, result.deployment)
        opt = exact_optimum_value(problem)
        ratio = approximation_ratio(problem.num_uavs, 2)
        assert result.served >= np.floor(ratio * opt)

    @given(st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_inner_variants_agree_roughly(self, seed):
        problem = self.clustered_problem(seed)
        sorted_served = appro_alg(problem, s=2, inner="sorted").served
        pairs_served = appro_alg(problem, s=2, inner="pairs").served
        assert pairs_served >= 0.7 * sorted_served
        assert sorted_served >= 0.7 * pairs_served


class TestFallbacks:
    def test_no_users(self):
        problem = make_line_instance(num_locations=3, users_per_location=0,
                                     capacities=(2, 2))
        result = appro_alg(problem, s=2)
        assert result.served == 0
        validate_deployment(problem.graph, problem.fleet, result.deployment)

    def test_k_too_small_for_far_anchors_degrades_s(self):
        """Anchors can never be 2-subsets spanning the line with K = 2;
        feasible 2-subsets exist (adjacent ones), so no fallback needed —
        but with disconnected candidate locations s must degrade."""
        from repro.geometry.point import Point3D
        from repro.network.uav import UAV

        # Two isolated location clusters.
        locations = [
            Point3D(0.0, 0.0, 300.0),
            Point3D(10_000.0, 0.0, 300.0),
        ]
        users = users_from_points([(0.0, 10.0), (10_000.0, 10.0)])
        graph = CoverageGraph(users=users, locations=locations,
                              uav_range_m=600.0)
        fleet = [UAV(capacity=2), UAV(capacity=1)]
        problem = ProblemInstance(graph=graph, fleet=fleet)
        result = appro_alg(problem, s=2)
        assert result.stats.fallback_used
        validate_deployment(problem.graph, problem.fleet, result.deployment)
        assert result.served >= 1

    def test_unreachable_users_ignored(self):
        """Users out of every location's range simply cannot be served."""
        problem = make_line_instance(num_locations=3, users_per_location=2,
                                     capacities=(4, 4, 4))
        from repro.network.users import users_from_points as ufp

        far_users = ufp([(10_000.0, 10_000.0)])
        graph = CoverageGraph(
            users=list(problem.graph.users) + far_users,
            locations=problem.graph.locations,
            uav_range_m=600.0,
        )
        problem2 = ProblemInstance(graph=graph, fleet=problem.fleet)
        result = appro_alg(problem2, s=2)
        assert result.served == 6  # all but the far user
        validate_deployment(problem2.graph, problem2.fleet, result.deployment)


class TestHeterogeneityAwareness:
    def test_big_uav_lands_on_big_pile(self):
        """The headline claim: capacity-aware placement puts the large
        UAV over the dense pile.  Two piles (6 and 2 users) two hops
        apart; capacities (6, 2, irrelevant relay)."""
        from repro.core.problem import ProblemInstance

        points = [(500.0 + 3.0 * i, 0.0) for i in range(6)]
        points += [(1500.0 + 3.0 * i, 0.0) for i in range(2)]
        base = make_line_instance(num_locations=3, users_per_location=1,
                                  capacities=(6, 2, 2))
        graph = CoverageGraph(
            users=users_from_points(points),
            locations=base.graph.locations,
            uav_range_m=600.0,
        )
        problem = ProblemInstance(graph=graph, fleet=base.fleet)
        result = appro_alg(problem, s=1)
        assert result.served == 8
        # UAV 0 (capacity 6) must be at location 0 (the 6-pile).
        assert result.deployment.placements[0] == 0

    def test_small_scenario_beats_random(self, small_scenario):
        from repro.baselines.random_connected import random_connected

        appro = appro_alg(small_scenario, s=2, gain_mode="fast")
        rnd = random_connected(small_scenario, seed=0)
        assert appro.served >= rnd.served_count


class TestContextEquivalence:
    """The vectorised context path (batched bounds, warm-start engine) must
    reproduce the scalar no-context path bit-for-bit: same served count,
    same placements, for both gain modes."""

    @pytest.mark.parametrize("gain_mode", ["exact", "fast"])
    @given(st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_context_matches_scalar_path(self, gain_mode, seed):
        from repro.core.context import SolverContext

        problem = random_tiny_problem(seed)
        scalar = appro_alg(problem, s=2, gain_mode=gain_mode)
        ctx = SolverContext.from_problem(problem)
        vectorised = appro_alg(problem, s=2, gain_mode=gain_mode, context=ctx)
        assert vectorised.served == scalar.served
        assert vectorised.anchors == scalar.anchors
        assert (vectorised.deployment.placements
                == scalar.deployment.placements)

    @given(st.integers(0, 10_000))
    @settings(max_examples=6, deadline=None)
    def test_bound_prune_with_context_unchanged(self, seed):
        from repro.core.context import SolverContext

        problem = random_tiny_problem(seed)
        plain = appro_alg(problem, s=2)
        ctx = SolverContext.from_problem(problem)
        pruned = appro_alg(problem, s=2, bound_prune=True, context=ctx)
        assert pruned.served == plain.served
        assert pruned.anchors == plain.anchors
        assert pruned.deployment.placements == plain.deployment.placements
