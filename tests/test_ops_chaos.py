"""The chaos harness: deterministic, picklable, correctly targeted."""

from __future__ import annotations

import pickle
import time

import pytest

from repro.ops.chaos import ChaosError, ChaosEvent, ChaosSpec


def test_event_validation():
    with pytest.raises(ValueError, match="unknown chaos action"):
        ChaosEvent(chunk=0, action="explode")
    with pytest.raises(ValueError, match="chunk"):
        ChaosEvent(chunk=-1, action="kill")
    with pytest.raises(ValueError, match="attempts"):
        ChaosEvent(chunk=0, action="kill", attempts=0)
    with pytest.raises(ValueError, match="delay_s"):
        ChaosEvent(chunk=0, action="delay", delay_s=-0.1)


def test_event_triggers_while_attempt_below_budget():
    event = ChaosEvent(chunk=3, action="raise", attempts=2)
    assert event.triggers(3, 0)
    assert event.triggers(3, 1)
    assert not event.triggers(3, 2), "re-dispatch past the budget succeeds"
    assert not event.triggers(4, 0), "other chunks are untouched"


def test_spec_event_for_picks_first_match():
    spec = ChaosSpec((
        ChaosEvent(chunk=1, action="raise"),
        ChaosEvent(chunk=1, action="delay"),
    ))
    assert spec.event_for(1, 0).action == "raise"
    assert spec.event_for(1, 1) is None
    assert spec.event_for(0, 0) is None


def test_spec_apply_raise_and_delay():
    spec = ChaosSpec((
        ChaosEvent(chunk=0, action="raise"),
        ChaosEvent(chunk=1, action="delay", delay_s=0.01),
    ))
    with pytest.raises(ChaosError, match="chunk 0"):
        spec.apply(0, 0)
    start = time.perf_counter()
    spec.apply(1, 0)           # sleeps, then returns normally
    assert time.perf_counter() - start >= 0.01
    spec.apply(2, 0)           # no event: a no-op


def test_spec_rejects_non_events():
    with pytest.raises(TypeError, match="not a ChaosEvent"):
        ChaosSpec(("kill chunk 3",))


def test_constructors():
    kills = ChaosSpec.kills(2, 5)
    assert [e.chunk for e in kills.events] == [2, 5]
    assert all(e.action == "kill" and e.attempts == 1 for e in kills.events)
    raises = ChaosSpec.raises(1, attempts=3)
    assert raises.events[0].action == "raise"
    assert raises.events[0].attempts == 3
    poison = ChaosSpec.poison(7)
    assert poison.event_for(7, 10 ** 6) is not None, "poison never heals"


def test_random_is_seed_deterministic_with_distinct_victims():
    a = ChaosSpec.random(num_chunks=20, seed=9, kills=2, raises=2, delays=1)
    b = ChaosSpec.random(num_chunks=20, seed=9, kills=2, raises=2, delays=1)
    assert a == b
    victims = [e.chunk for e in a.events]
    assert len(set(victims)) == len(victims)
    assert all(0 <= v < 20 for v in victims)
    assert [e.action for e in a.events] == [
        "kill", "kill", "raise", "raise", "delay"
    ]
    c = ChaosSpec.random(num_chunks=20, seed=10, kills=2, raises=2, delays=1)
    assert c != a, "different seed, different draw (overwhelmingly likely)"


def test_random_overdraw_rejected():
    with pytest.raises(ValueError, match="distinct victim"):
        ChaosSpec.random(num_chunks=3, seed=1, kills=2, raises=2)


def test_spec_is_picklable():
    spec = ChaosSpec.random(num_chunks=10, seed=4, kills=1, raises=1)
    assert pickle.loads(pickle.dumps(spec)) == spec
