"""Property-based verification of the matroid axioms (Section II-E) for
both concrete matroids: (i) the empty set is independent, (ii) hereditary,
(iii) augmentation.

These are exactly the properties the paper's 1/3-approximation relies on;
the paper omits the proofs, so we check them exhaustively on random
instances instead.
"""

from itertools import combinations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.segments import q_bounds
from repro.matroid.hop import HopCountingMatroid
from repro.matroid.partition import PartitionMatroid


def check_axioms_exhaustive(matroid, max_ground: int = 9) -> None:
    """Verify all three axioms by enumeration over a small ground set."""
    ground = sorted(matroid.ground_set())
    assert len(ground) <= max_ground, "instance too large for exhaustion"
    assert matroid.is_independent(set()), "axiom (i): empty set"

    independents = []
    for r in range(len(ground) + 1):
        for subset in combinations(ground, r):
            if matroid.is_independent(set(subset)):
                independents.append(frozenset(subset))

    independent_set = set(independents)
    # (ii) hereditary: every subset of an independent set is independent.
    for b in independents:
        for e in b:
            assert frozenset(b - {e}) in independent_set, (
                f"hereditary violated: {set(b)} independent but "
                f"{set(b - {e})} is not"
            )
    # (iii) augmentation.
    for a in independents:
        for b in independents:
            if len(a) > len(b):
                assert any(
                    frozenset(b | {e}) in independent_set for e in a - b
                ), f"augmentation violated for A={set(a)}, B={set(b)}"


def random_partition_matroid(seed: int) -> PartitionMatroid:
    rng = np.random.default_rng(seed)
    size = int(rng.integers(1, 9))
    num_blocks = int(rng.integers(1, 4))
    blocks = {e: int(rng.integers(0, num_blocks)) for e in range(size)}
    caps = {b: int(rng.integers(0, 4)) for b in range(num_blocks)}
    return PartitionMatroid(
        ground=range(size), block_of=lambda e: blocks[e], capacity=caps
    )


def random_hop_matroid(seed: int) -> HopCountingMatroid:
    rng = np.random.default_rng(seed)
    size = int(rng.integers(1, 10))
    hmax = int(rng.integers(0, 4))
    hops = [int(h) for h in rng.integers(0, hmax + 2, size=size)]
    q = []
    prev = int(rng.integers(0, size + 2))
    for _ in range(hmax + 1):
        q.append(prev)
        prev = int(rng.integers(0, prev + 1))
    return HopCountingMatroid(hops, q)


class TestPartitionMatroidAxioms:
    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_random_instances(self, seed):
        check_axioms_exhaustive(random_partition_matroid(seed))

    def test_uav_placement_instance(self):
        check_axioms_exhaustive(PartitionMatroid.uav_placement(3, 3))


class TestHopMatroidAxioms:
    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_random_instances(self, seed):
        check_axioms_exhaustive(random_hop_matroid(seed))

    def test_paper_shaped_instance(self):
        # Eq. 1 bounds for L = 8, p = (1, 2, 2): a realistic M2.
        hops = [0, 0, 1, 1, 1, 2, 1, 1]
        m = HopCountingMatroid(hops, q_bounds(8, [1, 2, 2]))
        check_axioms_exhaustive(m)
