"""Packed-bitset helpers, including the pre-numpy-2.0 popcount fallback.

``repro.util.bits._bit_counts`` dispatches per call on
``hasattr(np, "bitwise_count")``, so deleting the attribute under
``monkeypatch`` exercises the 8-bit lookup-table path on any numpy —
exactly what a numpy < 2.0 install would run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.util.bits import (
    _POPCOUNT_TABLE,
    pack_indices,
    popcount,
    popcount_rows,
    unpack_indices,
)


def _delete_hw_popcount(monkeypatch):
    if hasattr(np, "bitwise_count"):
        monkeypatch.delattr(np, "bitwise_count")


class TestPopcountFallback:
    def test_table_is_exact(self):
        assert _POPCOUNT_TABLE.dtype == np.uint8
        assert [int(x) for x in _POPCOUNT_TABLE] == [
            bin(i).count("1") for i in range(256)
        ]

    def test_fallback_popcount_matches_python(self, monkeypatch):
        _delete_hw_popcount(monkeypatch)
        rng = np.random.default_rng(7)
        packed = rng.integers(0, 256, size=137, dtype=np.uint8)
        expected = sum(bin(int(b)).count("1") for b in packed)
        assert popcount(packed) == expected

    def test_fallback_rows_match_hardware_path(self, monkeypatch):
        if not hasattr(np, "bitwise_count"):
            pytest.skip("no hardware popcount on this numpy")
        rng = np.random.default_rng(11)
        packed = rng.integers(0, 256, size=(23, 17), dtype=np.uint8)
        hw = popcount_rows(packed)
        _delete_hw_popcount(monkeypatch)
        table = popcount_rows(packed)
        assert table.dtype == np.int64
        np.testing.assert_array_equal(hw, table)

    def test_fallback_handles_empty_and_zero(self, monkeypatch):
        _delete_hw_popcount(monkeypatch)
        assert popcount(np.zeros(0, dtype=np.uint8)) == 0
        assert popcount(np.zeros(5, dtype=np.uint8)) == 0
        np.testing.assert_array_equal(
            popcount_rows(np.zeros((3, 4), dtype=np.uint8)), [0, 0, 0]
        )

    def test_runtime_switch_is_per_call(self, monkeypatch):
        """The dispatch happens inside each call, so the same process can
        use the hardware path before and the table after removal."""
        packed = np.array([255, 1, 16], dtype=np.uint8)
        before = popcount(packed)
        _delete_hw_popcount(monkeypatch)
        assert popcount(packed) == before == 10


class TestPackRoundtrip:
    def test_roundtrip_under_fallback(self, monkeypatch):
        _delete_hw_popcount(monkeypatch)
        rng = np.random.default_rng(3)
        for n in (1, 7, 8, 9, 63, 300):
            idx = np.flatnonzero(rng.random(n) < 0.4)
            packed = pack_indices(idx, n)
            assert unpack_indices(packed, n) == idx.tolist()
            assert popcount(packed) == idx.size

    def test_popcount_rows_rejects_scalar(self):
        with pytest.raises(ValueError):
            popcount_rows(np.uint8(3))
