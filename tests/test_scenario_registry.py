"""Tests for the algorithm registry and the layering it enforces."""

import ast
from pathlib import Path

import pytest

import repro.sim.runner as runner
from repro.scenario.registry import (
    DEFAULT_REGISTRY,
    AlgorithmEntry,
    AlgorithmRegistry,
    default_registry,
)


class TestEntries:
    def test_builtin_names(self):
        assert DEFAULT_REGISTRY.names() == sorted([
            "approAlg", "MCS", "MotionCtrl", "GreedyAssign",
            "maxThroughput", "RandomConnected", "Unconstrained",
        ])

    def test_appro_capabilities(self):
        entry = DEFAULT_REGISTRY.get("approAlg")
        assert entry.supports_workers
        assert entry.supports_bound_prune
        assert entry.supports_context
        assert entry.cooperative
        assert entry.watchdog_tier == 0

    def test_baselines_have_no_engine_capabilities(self):
        for name in ("MCS", "GreedyAssign", "maxThroughput"):
            entry = DEFAULT_REGISTRY.get(name)
            assert not entry.supports_workers
            assert not entry.supports_context
            assert not entry.cooperative

    def test_unconstrained_is_connectivity_exempt(self):
        assert not DEFAULT_REGISTRY.get("Unconstrained").requires_connected
        assert DEFAULT_REGISTRY.get("MCS").requires_connected

    def test_entry_requires_name_and_callable(self):
        with pytest.raises(ValueError):
            AlgorithmEntry("", lambda p: None)
        with pytest.raises(TypeError):
            AlgorithmEntry("thing", solve="not-callable")

    def test_get_unknown_lists_known(self):
        with pytest.raises(KeyError, match="approAlg"):
            DEFAULT_REGISTRY.get("Oracle9000")

    def test_register_rejects_duplicates_unless_replace(self):
        registry = default_registry()
        entry = AlgorithmEntry("approAlg", lambda p: None)
        with pytest.raises(ValueError, match="already registered"):
            registry.register(entry)
        registry.register(entry, replace=True)
        assert registry.get("approAlg") is entry

    def test_container_protocol(self):
        assert "MCS" in DEFAULT_REGISTRY
        assert "Oracle9000" not in DEFAULT_REGISTRY
        assert len(DEFAULT_REGISTRY) == 7
        assert [e.name for e in DEFAULT_REGISTRY] == DEFAULT_REGISTRY.names()


class TestRunnerViews:
    """sim.runner's dispatch tables are views of this registry."""

    def test_algorithms_table_matches(self):
        assert runner.ALGORITHMS == DEFAULT_REGISTRY.callables()

    def test_algorithms_table_is_independent_mutable_copy(self):
        table = DEFAULT_REGISTRY.callables()
        table["Stub"] = lambda p: None
        assert "Stub" not in DEFAULT_REGISTRY
        assert "Stub" not in runner.ALGORITHMS

    def test_unconnected_ok_view(self):
        assert runner._UNCONNECTED_OK == frozenset({"Unconstrained"})
        assert runner._UNCONNECTED_OK == DEFAULT_REGISTRY.unconnected_ok()

    def test_cooperative_view(self):
        assert runner._COOPERATIVE == frozenset({"approAlg"})
        assert runner._COOPERATIVE == DEFAULT_REGISTRY.cooperative()

    def test_fallback_chain_ordered_by_tier(self):
        assert DEFAULT_REGISTRY.fallback_chain() == (
            "approAlg", "MCS", "GreedyAssign"
        )
        assert runner.DEFAULT_FALLBACK_CHAIN == (
            "approAlg", "MCS", "GreedyAssign"
        )


class TestDispatchEquivalence:
    """Registry dispatch produces the same deployments as the legacy
    run_algorithm table for every deterministic solver."""

    DETERMINISTIC = (
        "approAlg", "MCS", "MotionCtrl", "GreedyAssign",
        "maxThroughput", "Unconstrained",
    )

    def test_same_deployments(self, small_scenario):
        for name in self.DETERMINISTIC:
            params = {"s": 2} if name == "approAlg" else {}
            via_registry = DEFAULT_REGISTRY.get(name).solve(
                small_scenario, **params
            )
            via_legacy = runner.ALGORITHMS[name](small_scenario, **params)
            assert via_registry.placements == via_legacy.placements, name
            assert via_registry.assignment == via_legacy.assignment, name

    def test_record_equivalence(self, small_scenario):
        from repro.scenario.pipeline import SolvePipeline

        pipeline = SolvePipeline(prebuild_context=False)
        for name in self.DETERMINISTIC:
            params = {"s": 2} if name == "approAlg" else {}
            record = pipeline.solve(small_scenario, name, params).record
            legacy = runner.run_algorithm(small_scenario, name, **params)
            assert record.algorithm == legacy.algorithm
            assert record.served == legacy.served
            assert record.status == legacy.status
            assert record.params == legacy.params


class TestLayering:
    """The scenario package sits below repro.sim: no module-level import
    of the sim package (the grep lint in CI enforces the run_algorithm
    half of this; here we check the whole package boundary)."""

    PACKAGE_DIR = Path(__file__).parent.parent / "src" / "repro" / "scenario"

    def test_no_module_level_sim_imports(self):
        assert self.PACKAGE_DIR.is_dir()
        for path in sorted(self.PACKAGE_DIR.glob("*.py")):
            tree = ast.parse(path.read_text())
            for node in tree.body:  # module level only
                names = []
                if isinstance(node, ast.Import):
                    names = [alias.name for alias in node.names]
                elif isinstance(node, ast.ImportFrom):
                    names = [node.module or ""]
                for name in names:
                    assert not name.startswith("repro.sim"), (
                        f"{path.name} imports {name} at module level; the "
                        "scenario layer sits below repro.sim (function-"
                        "level imports of leaf submodules are the allowed "
                        "escape hatch)"
                    )

    def test_never_calls_run_algorithm(self):
        for path in sorted(self.PACKAGE_DIR.glob("*.py")):
            tree = ast.parse(path.read_text())
            for node in ast.walk(tree):
                if isinstance(node, ast.ImportFrom):
                    imported = [alias.name for alias in node.names]
                    assert "run_algorithm" not in imported, path.name
                if isinstance(node, ast.Attribute):
                    assert node.attr != "run_algorithm", path.name
