"""Tests for UAV and fleet builders."""

import numpy as np
import pytest

from repro.network.fleet import (
    fleet_from_models,
    heterogeneous_fleet,
    homogeneous_fleet,
)
from repro.network.uav import MATRICE_300, MATRICE_600, UAV


class TestUav:
    def test_defaults(self):
        u = UAV(capacity=100)
        assert u.capacity == 100
        assert u.user_range_m == 500.0

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            UAV(capacity=-1)

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            UAV(capacity=1, user_range_m=0.0)

    def test_rejects_bad_battery(self):
        with pytest.raises(ValueError):
            UAV(capacity=1, battery_wh=-5.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            UAV(capacity=1).capacity = 2


class TestHeterogeneousFleet:
    def test_capacities_in_range(self):
        fleet = heterogeneous_fleet(50, capacity_min=50, capacity_max=300,
                                    seed=0)
        assert len(fleet) == 50
        assert all(50 <= u.capacity <= 300 for u in fleet)

    def test_deterministic_with_seed(self):
        a = heterogeneous_fleet(10, seed=42)
        b = heterogeneous_fleet(10, seed=42)
        assert [u.capacity for u in a] == [u.capacity for u in b]

    def test_different_seeds_differ(self):
        a = heterogeneous_fleet(20, seed=1)
        b = heterogeneous_fleet(20, seed=2)
        assert [u.capacity for u in a] != [u.capacity for u in b]

    def test_power_scales_with_capacity(self):
        fleet = heterogeneous_fleet(30, seed=3)
        by_cap = sorted(fleet, key=lambda u: u.capacity)
        assert by_cap[0].tx_power_dbm <= by_cap[-1].tx_power_dbm

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            heterogeneous_fleet(-1)
        with pytest.raises(ValueError):
            heterogeneous_fleet(3, capacity_min=10, capacity_max=5)

    def test_accepts_generator(self):
        rng = np.random.default_rng(0)
        fleet = heterogeneous_fleet(5, seed=rng)
        assert len(fleet) == 5

    def test_uniform_ranges_by_default(self):
        fleet = heterogeneous_fleet(10, seed=4)
        assert {u.user_range_m for u in fleet} == {500.0}

    def test_heterogeneous_ranges(self):
        fleet = heterogeneous_fleet(30, heterogeneous_ranges=True, seed=4)
        radii = [u.user_range_m for u in fleet]
        assert min(radii) >= 0.8 * 500.0
        assert max(radii) <= 500.0
        assert len(set(radii)) > 1
        # Radius tracks capacity.
        by_cap = sorted(fleet, key=lambda u: u.capacity)
        assert by_cap[0].user_range_m <= by_cap[-1].user_range_m

    def test_heterogeneous_range_deployment_feasible(self):
        """End-to-end: appro_alg handles per-UAV radii (coverage sets are
        radio-specific) and the validator confirms ranges."""
        from repro.core.approx import appro_alg
        from repro.core.problem import ProblemInstance
        from repro.network.validate import validate_deployment
        from repro.workload.scenarios import paper_scenario

        base = paper_scenario(num_users=200, num_uavs=5, scale="small",
                              seed=2)
        fleet = heterogeneous_fleet(5, heterogeneous_ranges=True, seed=2)
        problem = ProblemInstance(graph=base.graph, fleet=fleet)
        result = appro_alg(problem, s=2, gain_mode="fast")
        validate_deployment(problem.graph, problem.fleet, result.deployment)
        assert result.served > 0


class TestHomogeneousFleet:
    def test_identical(self):
        fleet = homogeneous_fleet(5, capacity=80)
        assert len({u.capacity for u in fleet}) == 1
        assert fleet[0].capacity == 80


class TestModelFleet:
    def test_default_fig1_mix(self):
        fleet = fleet_from_models(seed=0)
        assert len(fleet) == 4
        names = [u.name.split("-")[0] for u in fleet]
        assert names.count("m600") == 1
        assert names.count("m300") == 3

    def test_capacity_ranges_respected(self):
        fleet = fleet_from_models({"M600": 5, "M300": 5}, seed=1)
        for u in fleet:
            model = MATRICE_600 if u.name.startswith("m600") else MATRICE_300
            lo, hi = model.capacity_range
            assert lo <= u.capacity <= hi

    def test_m600_stronger_than_m300(self):
        assert MATRICE_600.max_payload_kg > MATRICE_300.max_payload_kg
        assert MATRICE_600.tx_power_dbm > MATRICE_300.tx_power_dbm

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError, match="known"):
            fleet_from_models({"M9000": 1})

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            fleet_from_models({"M300": -1})
