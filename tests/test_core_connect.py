"""Tests for the connection step (Algorithm 2 lines 13-18)."""


from repro.core.connect import connect_and_deploy
from repro.core.greedy import anchored_greedy
from repro.core.segments import optimal_segments
from repro.graphs.bfs import is_connected
from tests.conftest import make_line_instance


def run_pipeline(problem, anchors, s=2, augment=True, order=None):
    plan = optimal_segments(problem.num_uavs, s)
    greedy = anchored_greedy(problem, anchors, plan, order=order)
    return connect_and_deploy(problem, greedy, order=order,
                              augment_leftover=augment)


class TestConnectAndDeploy:
    def test_result_connected(self):
        problem = make_line_instance(num_locations=6, users_per_location=3)
        solution = run_pipeline(problem, [0, 5])
        assert solution is not None
        locs = sorted(solution.placements.values())
        assert is_connected(problem.graph.location_graph, locs)

    def test_no_more_than_k_uavs(self):
        problem = make_line_instance(num_locations=8, users_per_location=2,
                                     capacities=(2,) * 8)
        solution = run_pipeline(problem, [0, 7])
        assert solution is not None
        assert len(solution.placements) <= problem.num_uavs

    def test_each_uav_once_each_location_once(self):
        problem = make_line_instance(num_locations=6, users_per_location=3)
        solution = run_pipeline(problem, [1, 4])
        locs = list(solution.placements.values())
        assert len(locs) == len(set(locs))

    def test_infeasible_when_anchors_too_far(self):
        """With K = 3 UAVs and anchors 5 hops apart the connected subgraph
        needs 6 nodes > K: must return None."""
        problem = make_line_instance(
            num_locations=6, users_per_location=2, capacities=(2, 2, 2)
        )
        plan = optimal_segments(3, 2)
        greedy = anchored_greedy(problem, [0, 5], plan)
        assert connect_and_deploy(problem, greedy) is None

    def test_relays_are_staffed(self):
        """Anchors three hops apart with only them chosen: the two middle
        path nodes become relays and receive UAVs."""
        problem = make_line_instance(
            num_locations=4, users_per_location=2,
            capacities=(2, 2, 2, 2),
        )
        plan = optimal_segments(4, 2)
        greedy = anchored_greedy(problem, [0, 3], plan)
        solution = connect_and_deploy(problem, greedy, augment_leftover=False)
        assert solution is not None
        locs = set(solution.placements.values())
        assert {0, 3} <= locs
        assert is_connected(problem.graph.location_graph, sorted(locs))

    def test_augment_leftover_only_helps(self):
        problem = make_line_instance(num_locations=8, users_per_location=2)
        strict = run_pipeline(problem, [2, 4], augment=False)
        augmented = run_pipeline(problem, [2, 4], augment=True)
        assert augmented.served >= strict.served
        assert len(augmented.placements) >= len(strict.placements)

    def test_leftover_augmentation_preserves_connectivity(self):
        problem = make_line_instance(num_locations=8, users_per_location=2)
        solution = run_pipeline(problem, [3, 4], augment=True)
        locs = sorted(solution.placements.values())
        assert is_connected(problem.graph.location_graph, locs)

    def test_served_counts_all_deployed(self):
        problem = make_line_instance(num_locations=5, users_per_location=2)
        solution = run_pipeline(problem, [0, 4])
        from repro.core.assignment import max_served
        exact = max_served(problem.graph, problem.fleet, solution.placements)
        assert solution.served == exact
