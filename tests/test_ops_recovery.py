"""Tests for the recovery controller: component analysis, graceful
degradation, and watchdog-guarded repair planning."""

import pytest

from repro.network.deployment import Deployment
from repro.network.validate import validate_deployment
from repro.ops.recovery import (
    RecoveryPolicy,
    degrade_to_remnant,
    plan_repair,
    residual_connected,
    uav_components,
)
from repro.sim.runner import WatchdogConfig
from tests.conftest import make_line_instance


@pytest.fixture
def line():
    """5 locations in a chain, 4 users each, one UAV per cluster."""
    return make_line_instance(
        num_locations=5, users_per_location=4,
        capacities=(4, 4, 4, 4, 4),
    )


def full_chain() -> Deployment:
    return Deployment(placements={k: k for k in range(5)})


class TestComponents:
    def test_connected_chain_is_one_component(self, line):
        assert uav_components(line, full_chain().placements) == [
            [0, 1, 2, 3, 4]
        ]
        assert residual_connected(line, full_chain().placements)

    def test_hole_splits_chain(self, line):
        placements = {0: 0, 1: 1, 3: 3, 4: 4}  # location 2 vacant
        assert uav_components(line, placements) == [[0, 1], [3, 4]]
        assert not residual_connected(line, placements)

    def test_degraded_link_splits(self, line):
        placements = full_chain().placements
        degraded = {(1, 2)}  # the UAVs at locations 1 and 2
        assert uav_components(line, placements, degraded) == [
            [0, 1], [2, 3, 4]
        ]
        assert not residual_connected(line, placements, degraded)

    def test_empty_is_connected(self, line):
        assert uav_components(line, {}) == []
        assert residual_connected(line, {})


class TestDegrade:
    def test_keeps_largest_remnant(self, line):
        # UAV at location 1 failed: {0} vs {2, 3, 4} remain.
        placements = {0: 0, 2: 2, 3: 3, 4: 4}
        result = degrade_to_remnant(line, placements, failed_location=1)
        assert sorted(result.deployment.placements) == [2, 3, 4]
        assert result.dropped_uavs == (0,)
        assert result.num_components == 2
        assert result.hit_articulation_point
        assert result.deployment.served_count == 12
        validate_deployment(line.graph, line.fleet, result.deployment)

    def test_end_failure_no_split(self, line):
        placements = {0: 0, 1: 1, 2: 2, 3: 3}  # end UAV (loc 4) failed
        result = degrade_to_remnant(line, placements, failed_location=4)
        assert sorted(result.deployment.placements) == [0, 1, 2, 3]
        assert result.dropped_uavs == ()
        assert result.num_components == 1
        assert not result.hit_articulation_point
        assert result.deployment.served_count == 16

    def test_capacity_breaks_size_ties(self):
        line = make_line_instance(
            num_locations=5, users_per_location=2,
            capacities=(1, 1, 1, 4, 4),
        )
        # Middle vacant: components {0, 1} and {3, 4} have equal size;
        # the higher-capacity side must win.
        placements = {0: 0, 1: 1, 3: 3, 4: 4}
        result = degrade_to_remnant(line, placements)
        assert sorted(result.deployment.placements) == [3, 4]

    def test_everything_lost(self, line):
        result = degrade_to_remnant(line, {}, failed_location=2)
        assert result.deployment.served_count == 0
        assert result.num_components == 0


class TestRecoveryPolicy:
    def test_backoff_is_exponential(self):
        policy = RecoveryPolicy(backoff_initial_s=2.0, backoff_factor=3.0)
        assert policy.backoff_s(1) == 2.0
        assert policy.backoff_s(2) == 6.0
        assert policy.backoff_s(3) == 18.0

    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            RecoveryPolicy(max_retries=0)
        with pytest.raises(ValueError, match="backoff_factor"):
            RecoveryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError, match="attempt"):
            RecoveryPolicy().backoff_s(0)


class TestPlanRepair:
    def policy(self) -> RecoveryPolicy:
        return RecoveryPolicy(
            watchdog=WatchdogConfig(params={"approAlg": {"s": 2}})
        )

    def test_reconnects_after_partition(self, line):
        # Post-crash remnant: only locations 3 and 4 online, UAV 2 lost.
        current = degrade_to_remnant(
            line, {0: 0, 1: 1, 3: 3, 4: 4}, failed_location=2
        ).deployment
        assert current.served_count <= 12
        outcome = plan_repair(
            line, current, available=[0, 1, 3, 4], policy=self.policy()
        )
        assert outcome.ok, outcome.detail
        assert outcome.deployment.served_count == 16
        assert outcome.deployment.num_deployed == 4
        validate_deployment(line.graph, line.fleet, outcome.deployment)
        assert residual_connected(line, outcome.deployment.placements)
        # Crashed UAV 2 must not be re-dispatched.
        assert 2 not in outcome.deployment.placements

    def test_no_better_when_remnant_already_optimal(self, line):
        # End UAV lost: the contiguous remnant of 4 serves 16, which is the
        # best any 4-UAV connected deployment can do here.
        current = degrade_to_remnant(
            line, {0: 0, 1: 1, 2: 2, 3: 3}, failed_location=4
        ).deployment
        outcome = plan_repair(
            line, current, available=[0, 1, 2, 3], policy=self.policy()
        )
        assert outcome.status == "no_better"
        assert not outcome.ok

    def test_no_uavs(self, line):
        outcome = plan_repair(
            line, Deployment.empty(), available=[], policy=self.policy()
        )
        assert outcome.status == "no_uavs"

    def test_relocation_plan_maps_fleet_indices(self, line):
        current = degrade_to_remnant(
            line, {0: 0, 1: 1, 3: 3, 4: 4}, failed_location=2
        ).deployment
        outcome = plan_repair(
            line, current, available=[0, 1, 3, 4], policy=self.policy()
        )
        assert outcome.ok
        assert set(outcome.relocation.moves) == set(
            outcome.deployment.placements
        )
        for k, (_, dst) in outcome.relocation.moves.items():
            assert outcome.deployment.placements[k] == dst

    def test_degraded_link_blocks_plan_relying_on_it(self, line):
        # All five UAVs flyable but the 2<->3 hop (locations 2 and 3) is
        # degraded for the pair of UAVs that would occupy it; a full-chain
        # plan must be rejected as disconnected under residual links.
        current = degrade_to_remnant(
            line, {k: k for k in range(5)}, degraded_links={(2, 3)}
        ).deployment
        outcome = plan_repair(
            line,
            current,
            available=[0, 1, 2, 3, 4],
            degraded_links={(2, 3)},
            policy=self.policy(),
        )
        # Either the planner avoided the degraded link (fine) or the plan
        # was rejected; it must never adopt a residually-split network.
        if outcome.ok:
            assert residual_connected(
                line, outcome.deployment.placements, {(2, 3)}
            )
        else:
            assert outcome.status in ("invalid", "no_better")
