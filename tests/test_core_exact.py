"""Tests for the brute-force exact solver."""

import pytest

from repro.core.exact import exact_optimum, exact_optimum_value
from repro.network.validate import validate_deployment
from tests.conftest import make_line_instance


class TestExactOptimum:
    def test_disjoint_line(self):
        """On the disjoint line with ample capacities the optimum serves
        every user under the K best locations (connectivity keeps them
        contiguous; all locations adjacent on the line)."""
        problem = make_line_instance(
            num_locations=4, users_per_location=3, capacities=(3, 3, 3)
        )
        dep = exact_optimum(problem)
        assert dep.served_count == 9  # 3 UAVs x 3 users each
        validate_deployment(problem.graph, problem.fleet, dep)

    def test_capacity_matters(self):
        """The optimum must put the big UAV on the big pile: with piles of
        3 users and capacities (3, 1), the best two-location deployment
        serves 4."""
        problem = make_line_instance(
            num_locations=3, users_per_location=3, capacities=(3, 1)
        )
        assert exact_optimum_value(problem) == 4

    def test_connectivity_constraint_binds(self):
        """Two UAVs that could each serve a far-apart pile must stay
        adjacent: serving both far piles is infeasible, the optimum is one
        pile + an adjacent one."""
        problem = make_line_instance(
            num_locations=5, users_per_location=2, capacities=(2, 2)
        )
        connected = exact_optimum_value(problem, require_connected=True)
        free = exact_optimum_value(problem, require_connected=False)
        assert connected == free == 4  # adjacent piles both full

    def test_unconnected_can_beat_connected(self):
        """Make middle locations empty: connectivity then forces wasted
        relay positions and the unconstrained optimum is strictly better."""
        from repro.core.problem import ProblemInstance
        from repro.network.coverage import CoverageGraph
        from repro.network.users import users_from_points

        base = make_line_instance(num_locations=5, users_per_location=2,
                                  capacities=(2, 2))
        # Users only under locations 0 and 4.
        points = [(500.0, 0.0), (504.0, 0.0), (2500.0, 0.0), (2504.0, 0.0)]
        graph = CoverageGraph(
            users=users_from_points(points),
            locations=base.graph.locations,
            uav_range_m=600.0,
        )
        problem = ProblemInstance(graph=graph, fleet=base.fleet)
        connected = exact_optimum_value(problem, require_connected=True)
        free = exact_optimum_value(problem, require_connected=False)
        assert free == 4
        assert connected == 2  # two adjacent UAVs reach only one pile

    def test_guards_against_large_instances(self):
        problem = make_line_instance(num_locations=16, users_per_location=1,
                                     capacities=(1,) * 7)
        with pytest.raises(ValueError, match="too large"):
            exact_optimum(problem)
