"""Golden equivalence: the declarative pipeline vs the legacy paths.

The refactor's contract is *bit-identical behaviour*: for any seeded
spec, `SolvePipeline` must produce exactly the deployment (served users,
chosen nodes, user assignment) that the pre-refactor paths — direct
``paper_scenario`` + ``run_algorithm`` / ``ALGORITHMS[...]`` calls, the
sweep loops, the mission runtime — produced.  This suite pins that over
20+ specs spanning both scales, four algorithms, several seeds, serial
and ``workers=2``, plus the batch runner's reuse path (which must also
beat running the same specs sequentially).

CI runs this file in its own job (see .github/workflows/ci.yml).
"""

import time

import pytest

from repro.scenario.batch import BatchRunner
from repro.scenario.pipeline import SolvePipeline
from repro.scenario.spec import ScenarioSpec
from repro.sim.runner import ALGORITHMS, run_algorithm
from repro.workload.scenarios import paper_scenario

APPRO_PARAMS = {"s": 2, "gain_mode": "fast", "max_anchor_candidates": 10}

SCALE_GRID = (
    # (scale, num_users, num_uavs) — small and medium scales
    ("small", 300, 6),
    ("bench", 600, 8),
)
ALGORITHM_GRID = (
    ("approAlg", APPRO_PARAMS),
    ("MCS", {}),
    ("GreedyAssign", {}),
    ("maxThroughput", {}),
)
SEEDS = (0, 1, 2)


def _golden_specs() -> list:
    """24 serial specs (2 scales x 4 algorithms x 3 seeds) plus engine-
    option variants: workers=2 on both scales and bound_prune."""
    specs = [
        ScenarioSpec(
            name=f"golden-{scale}-{algorithm}-{seed}",
            scale=scale, num_users=users, num_uavs=uavs, seed=seed,
            algorithm=algorithm, algorithm_params=dict(params),
        )
        for scale, users, uavs in SCALE_GRID
        for algorithm, params in ALGORITHM_GRID
        for seed in SEEDS
    ]
    specs.append(ScenarioSpec(
        name="golden-small-workers2", scale="small", num_users=300,
        num_uavs=6, seed=0, algorithm="approAlg",
        algorithm_params=dict(APPRO_PARAMS), workers=2,
    ))
    specs.append(ScenarioSpec(
        name="golden-bench-workers2", scale="bench", num_users=600,
        num_uavs=8, seed=0, algorithm="approAlg",
        algorithm_params=dict(APPRO_PARAMS), workers=2,
    ))
    specs.append(ScenarioSpec(
        name="golden-bench-prune", scale="bench", num_users=600,
        num_uavs=8, seed=1, algorithm="approAlg",
        algorithm_params=dict(APPRO_PARAMS), bound_prune=True,
    ))
    return specs


def _legacy_run(spec: ScenarioSpec):
    """The pre-refactor path: build via paper_scenario, dispatch via the
    runner's table, record via run_algorithm."""
    problem = paper_scenario(
        num_users=spec.num_users, num_uavs=spec.num_uavs,
        scale=spec.scale, seed=spec.seed,
    )
    params = dict(spec.algorithm_params)
    if spec.workers != 1:
        params["workers"] = spec.workers
    if spec.bound_prune:
        params["bound_prune"] = True
    deployment = ALGORITHMS[spec.algorithm](problem, **params)
    record = run_algorithm(problem, spec.algorithm, **params)
    return deployment, record


GOLDEN_SPECS = _golden_specs()


@pytest.mark.timeout_guard(600)
@pytest.mark.parametrize(
    "spec", GOLDEN_SPECS, ids=[spec.name for spec in GOLDEN_SPECS]
)
def test_pipeline_matches_legacy_path(spec):
    assert len(GOLDEN_SPECS) >= 20
    state = SolvePipeline().run(spec)
    legacy_deployment, legacy_record = _legacy_run(spec)
    assert state.status == legacy_record.status == "ok"
    assert state.record.served == legacy_record.served
    assert state.deployment.placements == legacy_deployment.placements
    assert state.deployment.assignment == legacy_deployment.assignment
    assert state.record.num_users == legacy_record.num_users
    assert state.record.num_uavs == legacy_record.num_uavs


# Scale-layer variants: each must collapse onto the plain per-user run
# of its base spec bit for bit (singleton cells are the degenerate
# aggregation; a 1x1 grid is the identity carve; composed, both).
SCALE_VARIANTS = (
    ("singleton-cells", {"aggregation": "cells"}),
    ("tiles-1x1", {"tiles": "1x1"}),
    ("cells-tiles-1x1", {"aggregation": "cells", "tiles": "1x1"}),
)


@pytest.mark.timeout_guard(600)
@pytest.mark.parametrize(
    "label,overrides", SCALE_VARIANTS, ids=[v[0] for v in SCALE_VARIANTS]
)
@pytest.mark.parametrize("scale,users,uavs", SCALE_GRID)
def test_scale_variants_match_plain_pipeline(label, overrides, scale,
                                             users, uavs):
    base = ScenarioSpec(
        name=f"golden-scale-{scale}", scale=scale, num_users=users,
        num_uavs=uavs, seed=2, algorithm="approAlg",
        algorithm_params=dict(APPRO_PARAMS),
    )
    plain = SolvePipeline().run(base)
    variant = SolvePipeline().run(base.with_overrides(
        name=f"{base.name}-{label}", **overrides
    ))
    assert variant.status == "ok"
    assert variant.record.served == plain.record.served
    assert variant.deployment.placements == plain.deployment.placements
    assert variant.deployment.assignment == plain.deployment.assignment
    assert variant.record.num_users == plain.record.num_users


def test_sweep_points_match_legacy_loop():
    """The pipeline-backed fig5 sweep reproduces the pre-refactor loop
    (same RNG spawning, same records) point for point."""
    from repro.sim.experiments import fig5_sweep
    from repro.util.rng import spawn_rngs

    ns = (150, 250)
    swept = fig5_sweep(
        ns=ns, num_uavs=5, s=2, scale="small", seed=11,
        algorithms=("approAlg", "MCS"), max_anchor_candidates=8,
    )
    # Hand-rolled legacy loop, exactly as experiments.py used to do it.
    legacy_served = []
    (rep_rng,) = spawn_rngs(11, 1)
    point_rngs = spawn_rngs(rep_rng, len(ns))
    for n, rng in zip(ns, point_rngs):
        problem = paper_scenario(
            num_users=n, num_uavs=5, scale="small", seed=rng
        )
        for name in ("approAlg", "MCS"):
            params = (
                {"s": 2, "gain_mode": "fast", "max_anchor_candidates": 8}
                if name == "approAlg" else {}
            )
            legacy_served.append(run_algorithm(problem, name, **params).served)
    assert [record.served for _, record in swept.records] == legacy_served


def test_mission_spec_matches_manual_seed_plumbing():
    """run_mission_spec reproduces the manual problem + derived fault-seed
    path bit for bit (same scenario stream, same fault timeline)."""
    from repro.ops import FaultSchedule, MissionConfig, run_mission
    from repro.ops.mission import run_mission_spec
    from repro.util.rng import derive_seed

    spec = ScenarioSpec(
        name="golden-mission", scale="small", num_users=250, num_uavs=6,
        seed=5,
    )
    config = MissionConfig(duration_s=60.0)
    via_spec = run_mission_spec(spec, config=config, num_crashes=2)

    problem = paper_scenario(
        num_users=250, num_uavs=6, scale="small", seed=5
    )
    schedule = FaultSchedule.random(
        num_uavs=6, num_crashes=2, window_s=(6.0, 42.0),
        seed=derive_seed(5, "faults"),
    )
    manual = run_mission(problem, schedule, config)
    assert via_spec.served_initial == manual.served_initial
    assert via_spec.served_final == manual.served_final
    assert via_spec.timeline == manual.timeline
    assert via_spec.faults_injected == manual.faults_injected


@pytest.mark.timeout_guard(600)
def test_batch_of_8_beats_sequential_with_identical_results():
    """The acceptance benchmark: 8 specs over 2 scenarios through the
    batch runner must beat one-at-a-time pipeline runs on wall time while
    producing identical deployments.  The margin comes from structure,
    not parallelism: the batch builds each scenario and its solver
    context once instead of four times."""
    variants = (
        ("approAlg", {"s": 1, "gain_mode": "fast",
                      "max_anchor_candidates": 2}),
        ("approAlg", {"s": 1, "gain_mode": "fast",
                      "max_anchor_candidates": 3}),
        ("approAlg", {"s": 2, "gain_mode": "fast",
                      "max_anchor_candidates": 3}),
        ("MCS", {}),
    )
    specs = [
        ScenarioSpec(
            name=f"bench8-{seed}-{i}", scale="bench", num_users=2500,
            num_uavs=8, seed=seed, algorithm=algorithm,
            algorithm_params=dict(params),
        )
        for seed in (0, 1)
        for i, (algorithm, params) in enumerate(variants)
    ]
    assert len(specs) == 8

    pipeline = SolvePipeline()
    start = time.perf_counter()
    sequential = [pipeline.run(spec) for spec in specs]
    sequential_wall = time.perf_counter() - start

    batch = BatchRunner().run(specs)

    assert batch.groups == 2
    assert batch.context_builds == 2
    for state, item in zip(sequential, batch.items):
        assert state.record.served == item.record.served
        assert state.deployment.placements == item.deployment.placements
        assert state.deployment.assignment == item.deployment.assignment
    assert batch.wall_s < sequential_wall, (
        f"batch {batch.wall_s:.2f}s did not beat "
        f"sequential {sequential_wall:.2f}s"
    )
