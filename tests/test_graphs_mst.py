"""Tests for Prim MST against networkx."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.adjacency import Graph
from repro.graphs.mst import minimum_spanning_tree, tree_weight


class TestMst:
    def test_single_node(self):
        assert minimum_spanning_tree(Graph(1)) == []

    def test_empty_graph(self):
        assert minimum_spanning_tree(Graph(0)) == []

    def test_triangle(self):
        g = Graph(3)
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 2.0)
        g.add_edge(0, 2, 3.0)
        edges = minimum_spanning_tree(g)
        assert tree_weight(edges) == 3.0
        assert len(edges) == 2

    def test_disconnected_raises(self):
        g = Graph(3)
        g.add_edge(0, 1, 1.0)
        with pytest.raises(ValueError, match="disconnected"):
            minimum_spanning_tree(g)

    @given(st.integers(0, 10_000), st.integers(2, 20))
    @settings(max_examples=40, deadline=None)
    def test_weight_matches_networkx(self, seed, n):
        rng = np.random.default_rng(seed)
        ours = Graph(n)
        theirs = nx.Graph()
        theirs.add_nodes_from(range(n))
        # Random connected graph: random spanning chain + extra edges.
        perm = rng.permutation(n)
        for a, b in zip(perm, perm[1:]):
            w = float(rng.integers(1, 50))
            ours.add_edge(int(a), int(b), w)
            theirs.add_edge(int(a), int(b), weight=w)
        for _ in range(n):
            a, b = rng.integers(0, n, size=2)
            if a != b and not ours.has_edge(int(a), int(b)):
                w = float(rng.integers(1, 50))
                ours.add_edge(int(a), int(b), w)
                theirs.add_edge(int(a), int(b), weight=w)
        edges = minimum_spanning_tree(ours)
        assert len(edges) == n - 1
        expected = nx.minimum_spanning_tree(theirs).size(weight="weight")
        assert tree_weight(edges) == pytest.approx(expected)

    def test_result_spans_and_is_acyclic(self):
        rng = np.random.default_rng(5)
        n = 15
        g = Graph(n)
        for i in range(n - 1):
            g.add_edge(i, i + 1, float(rng.integers(1, 20)))
        for _ in range(20):
            a, b = rng.integers(0, n, size=2)
            if a != b and not g.has_edge(int(a), int(b)):
                g.add_edge(int(a), int(b), float(rng.integers(1, 20)))
        edges = minimum_spanning_tree(g)
        tree = nx.Graph([(u, v) for u, v, _ in edges])
        assert nx.is_tree(tree)
        assert tree.number_of_nodes() == n
