"""Tests for the coverage objective f(A): monotone submodularity (the
property Section III-B borrows from Megiddo [24]) and the generic FNW
greedy."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matroid.partition import PartitionMatroid
from repro.matroid.submodular import CoverageObjective, fnw_greedy
from tests.conftest import make_line_instance


def tiny_objective():
    problem = make_line_instance(num_locations=4, users_per_location=3,
                                 capacities=(2, 3, 1))
    return problem, CoverageObjective(problem.graph, problem.fleet)


class TestCoverageObjective:
    def test_empty_is_zero(self):
        _, f = tiny_objective()
        assert f.value([]) == 0

    def test_single_station(self):
        problem, f = tiny_objective()
        # UAV 0 (capacity 2) over location 0 (3 users beneath).
        assert f.value([(0, 0)]) == 2
        # UAV 1 (capacity 3) serves all 3.
        assert f.value([(1, 0)]) == 3

    def test_value_matches_assignment(self):
        _, f = tiny_objective()
        pairs = [(0, 0), (1, 1), (2, 2)]
        assignment = f.assignment(pairs)
        assert len(assignment) == f.value(pairs)

    def test_assignment_respects_capacity(self):
        problem, f = tiny_objective()
        pairs = [(2, 0)]  # capacity-1 UAV over 3 users
        assignment = f.assignment(pairs)
        assert len(assignment) == 1

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_monotone(self, seed):
        problem, f = tiny_objective()
        rng = np.random.default_rng(seed)
        all_pairs = [
            (k, j)
            for k in range(problem.num_uavs)
            for j in range(problem.num_locations)
        ]
        picks = [
            all_pairs[i]
            for i in rng.choice(len(all_pairs), size=5, replace=False)
        ]
        # Keep at most one location per UAV to stay meaningful.
        chosen: list = []
        used_uavs: set = set()
        for k, j in picks:
            if k not in used_uavs:
                chosen.append((k, j))
                used_uavs.add(k)
        for i in range(1, len(chosen) + 1):
            assert f.value(chosen[:i]) >= f.value(chosen[:i - 1])

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_submodular(self, seed):
        """f(A + e) - f(A) >= f(B + e) - f(B) for A subset of B."""
        problem, f = tiny_objective()
        rng = np.random.default_rng(seed)
        uavs = list(rng.permutation(problem.num_uavs))
        locs = list(rng.permutation(problem.num_locations))
        b = [(int(uavs[i]), int(locs[i])) for i in range(3)]
        a = b[:int(rng.integers(0, 3))]
        # Extension element with a fresh UAV and location.
        extra_uav = int(uavs[-1]) if int(uavs[-1]) not in [k for k, _ in b] else None
        if extra_uav is None:
            return
        e = (extra_uav, int(locs[3]))
        gain_a = f.value(a + [e]) - f.value(a)
        gain_b = f.value(b + [e]) - f.value(b)
        assert gain_a >= gain_b


class TestFnwGreedy:
    def test_respects_matroid(self):
        problem, f = tiny_objective()
        m1 = PartitionMatroid.uav_placement(
            problem.num_uavs, problem.num_locations
        )
        chosen = fnw_greedy(m1.ground_set(), f, [m1])
        assert m1.is_independent(chosen)
        uavs = [k for k, _ in chosen]
        assert len(uavs) == len(set(uavs))

    def test_max_size_respected(self):
        problem, f = tiny_objective()
        m1 = PartitionMatroid.uav_placement(
            problem.num_uavs, problem.num_locations
        )
        chosen = fnw_greedy(m1.ground_set(), f, [m1], max_size=2)
        assert len(chosen) <= 2

    def test_half_guarantee_single_matroid(self):
        """FNW gives 1/2 for one matroid; check empirically vs the best
        single-swap optimum on the tiny instance."""
        problem, f = tiny_objective()
        m1 = PartitionMatroid.uav_placement(
            problem.num_uavs, problem.num_locations
        )
        chosen = fnw_greedy(m1.ground_set(), f, [m1])
        greedy_value = f.value(chosen)
        # Exhaustive optimum over injective placements of all UAVs.
        from itertools import permutations
        best = 0
        for locs in permutations(range(problem.num_locations),
                                 problem.num_uavs):
            best = max(best, f.value(list(enumerate(locs))))
        assert greedy_value >= best / 2
        assert greedy_value <= best

    def test_stops_at_zero_gain(self):
        problem, f = tiny_objective()
        m1 = PartitionMatroid.uav_placement(
            problem.num_uavs, problem.num_locations
        )
        chosen = fnw_greedy(m1.ground_set(), f, [m1])
        # Total capacity is 6 over 12 users with 3 per location; greedy
        # should serve min over structure but never keep zero-gain picks.
        values = [f.value(chosen[:i]) for i in range(len(chosen) + 1)]
        assert all(b > a for a, b in zip(values, values[1:]))
