"""Property tests hardening ``repro.obs``.

Four invariants the observability layer must never lose:

* span balance — however instrumented code exits (returns, raises,
  nests), every entered span is closed and recorded; no open span
  survives, including when the watchdog aborts a cooperative solver with
  :class:`~repro.sim.runner.SolverTimeout` mid-run;
* engine equivalence — identical seeds yield bit-identical metric
  counters serial vs ``workers=N`` (counter merging is commutative
  addition of worker deltas, so chunking must not show through);
* manifest round-trip — ``write_trace`` → ``read_trace`` is lossless
  for any JSON-safe manifest;
* disabled means free — with observability off, nothing is recorded and
  the span helper returns the shared no-op singleton.
"""

from __future__ import annotations

import io
import tempfile
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core.approx import appro_alg
from repro.sim.runner import WatchdogConfig, solve_with_fallback
from repro.workload.scenarios import paper_scenario


class _Boom(Exception):
    pass


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with observability off and empty."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


# -- span balance ------------------------------------------------------------

# A random call tree: (children, raises_after_children).
_trees = st.recursive(
    st.booleans().map(lambda r: ([], r)),
    lambda kids: st.tuples(st.lists(kids, max_size=3), st.booleans()),
    max_leaves=12,
)


def _execute(node, entered: list, depth: int = 0) -> None:
    children, raises = node
    with obs.span(f"node-d{depth}", raises=raises):
        entered.append(depth)
        for child in children:
            _execute(child, entered, depth + 1)
        if raises:
            raise _Boom()


@given(tree=_trees)
@settings(max_examples=60, deadline=None)
def test_spans_balance_under_arbitrary_exceptions(tree):
    obs.enable()
    obs.reset()
    entered: list = []
    try:
        _execute(tree, entered)
    except _Boom:
        pass
    assert obs.open_span_count() == 0, "an exception leaked an open span"
    spans = obs.drain_spans()
    obs.disable()
    assert len(spans) == len(entered), "every entered span must be recorded"
    # Any span the exception escaped through carries the error marker.
    for s in spans:
        assert s.error in (None, "_Boom")
    if any(raises for _, raises in _flatten(tree)):
        if entered:  # the raise happened inside at least the root span
            assert any(s.error == "_Boom" for s in spans)


def _flatten(node):
    children, raises = node
    yield node, raises
    for child in children:
        yield from _flatten(child)


def test_traced_decorator_balances_on_exception():
    @obs.traced("boomer")
    def boomer():
        raise _Boom()

    obs.enable()
    with pytest.raises(_Boom):
        boomer()
    assert obs.open_span_count() == 0
    (span,) = obs.drain_spans()
    assert span.name == "boomer" and span.error == "_Boom"


def test_spans_balance_under_watchdog_solver_timeout():
    """A SolverTimeout aborting approAlg mid-enumeration must not leave
    the runner/approx spans open; the aborted tier's span records the
    timeout as its error."""
    problem = paper_scenario(num_users=120, num_uavs=4, scale="small", seed=2)
    obs.enable()
    result = solve_with_fallback(
        problem,
        WatchdogConfig(
            chain=("approAlg", "GreedyAssign"),
            budget_s=0.05,
            params={"approAlg": {
                "s": 2,
                "gain_mode": "fast",
                # Burn past the deadline on the first progress call so the
                # timeout deterministically fires *inside* the solver.
                "progress": lambda done, total: time.sleep(0.1),
            }},
        ),
    )
    assert obs.open_span_count() == 0
    spans = obs.drain_spans()
    counters = obs.metrics_snapshot()["counters"]
    obs.disable()

    assert result.ok and result.answered_by == "GreedyAssign"
    statuses = {a.algorithm: a.status for a in result.record.attempts}
    assert statuses["approAlg"] == "timeout"
    aborted = [s for s in spans if s.name == "runner.tier" and s.error]
    assert len(aborted) == 1
    assert aborted[0].error == "SolverTimeout"
    assert counters.get("runner.timeouts") == 1


# -- engine equivalence ------------------------------------------------------


@pytest.mark.timeout_guard(180)
def test_metric_counts_identical_serial_vs_parallel():
    """Same seed, same counters, same span count — workers=1 vs workers=4,
    with a live heartbeat reporter running over both.

    approx.* totals are incremented parent-side from the merged stats and
    worker-side greedy/flow counters merge by commutative addition, so the
    chunking of the subset enumeration must be invisible in the metrics.
    The LiveReporter only *reads* counters (per-worker utilization lands
    in gauges, which are legitimately worker-dependent), so sampling
    concurrently with either run must not break the equality.
    """
    problem = paper_scenario(num_users=130, num_uavs=4, scale="small", seed=3)

    def observed_run(workers: int):
        obs.enable()
        obs.reset()
        heartbeat = io.StringIO()
        # The timeline recorder rides the reporter's heartbeat (one
        # daemon serves both) — its final snapshot must carry the same
        # cumulative counters for any worker count.
        recorder = obs.TimelineRecorder(obs.TimelineConfig(interval_s=0.02))
        live = obs.LiveReporter(obs.LiveConfig(
            interval_s=0.02, stall_intervals=10**6, stream=heartbeat,
        ), timeline=recorder)
        with live:
            result = appro_alg(
                problem, s=2, gain_mode="exact", workers=workers
            )
        assert "[live]" in heartbeat.getvalue()
        assert len(recorder) == live.samples_taken > 0
        counters = dict(obs.metrics_snapshot()["counters"])
        spans = obs.drain_spans()
        obs.disable()
        obs.reset()
        return result, counters, len(spans), recorder.last()

    serial, serial_counts, serial_spans, serial_snap = observed_run(workers=1)
    parallel, parallel_counts, parallel_spans, parallel_snap = observed_run(
        workers=4
    )

    assert (serial.served, serial.anchors) == (parallel.served, parallel.anchors)
    assert serial_counts == parallel_counts
    assert serial_spans == parallel_spans
    # Timeline determinism: the closing snapshot equals the final registry
    # state on both sides, so chunked parallel absorption is invisible in
    # the recorded series' end state too.
    assert serial_snap["counters"] == serial_counts
    assert parallel_snap["counters"] == parallel_counts
    # The parallel timeline additionally carries per-worker utilization
    # gauges; every absorbed chunk is attributed to some worker pid (a
    # handful of subsets can be finished parent-side, so <=, not ==).
    assert parallel_snap["workers"]
    assert 0 < sum(parallel_snap["workers"].values()) <= parallel_counts[
        "approx.subsets_done"
    ]
    assert serial_counts["approx.subsets_evaluated"] > 0
    assert serial_counts["greedy.oracle_calls"] > 0
    assert serial_counts["flow.try_opens"] > 0
    # Live-progress counters: every planned subset was accounted done,
    # identically on both sides.
    assert serial_counts["approx.subsets_planned"] > 0
    assert (serial_counts["approx.subsets_done"]
            == serial_counts["approx.subsets_planned"])


# -- manifest round-trip -----------------------------------------------------

_scalars = (
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.floats(allow_nan=False)
    | st.text(max_size=20)
)
_config_dicts = st.dictionaries(st.text(max_size=10), _scalars, max_size=5)


@given(
    command=st.text(min_size=1, max_size=15),
    seed=st.none() | st.integers(min_value=0, max_value=2**31),
    algorithm=st.none() | st.text(max_size=15),
    scenario=_config_dicts,
    config=_config_dicts,
    stats=_config_dicts,
    wall_s=st.floats(min_value=0, allow_nan=False, allow_infinity=False),
)
@settings(max_examples=40, deadline=None)
def test_manifest_jsonl_roundtrip(
    command, seed, algorithm, scenario, config, stats, wall_s
):
    manifest = obs.RunManifest(
        command=command,
        seed=seed,
        scenario=scenario,
        algorithm=algorithm,
        config=config,
        git_rev="abc1234",
        stats=stats,
        wall_s=wall_s,
        created_unix=1700000000.0,
    )
    metrics = {"counters": {"x": 1}, "gauges": {}, "histograms": {}}
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "trace.jsonl"
        obs.write_trace(path, manifest, spans=[], metrics=metrics)
        data = obs.read_trace(path)
    assert data.manifest == manifest
    assert data.spans == []
    assert data.metrics == metrics


def test_trace_file_roundtrips_real_spans(tmp_path):
    obs.enable()
    with obs.span("outer", label="x"):
        with obs.span("inner"):
            obs.counter_inc("touched")
    spans = obs.drain_spans()
    metrics = obs.metrics_snapshot()
    obs.disable()

    manifest = obs.RunManifest(command="test", seed=7)
    path = obs.write_trace(tmp_path / "t.jsonl", manifest, spans, metrics)
    data = obs.read_trace(path)
    assert [s["name"] for s in data.spans] == ["outer", "inner"]
    assert [s["depth"] for s in data.spans] == [0, 1]
    assert data.spans == sorted(
        (s.to_dict() for s in spans), key=lambda r: r["index"]
    )
    assert data.metrics["counters"] == {"touched": 1}

    chrome = obs.chrome_trace(data.spans)
    assert len(chrome["traceEvents"]) == 2
    assert all(e["ph"] == "X" for e in chrome["traceEvents"])


def test_read_trace_rejects_unknown_record_type(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"type": "mystery", "x": 1}\n')
    with pytest.raises(ValueError, match="mystery"):
        obs.read_trace(path)


# -- disabled means free -----------------------------------------------------


def test_disabled_records_nothing():
    assert not obs.is_enabled()
    null = obs.span("anything", attr=1)
    assert obs.span("other") is null, "disabled span() must be a singleton"
    with obs.span("quiet"):
        obs.counter_inc("never")
        obs.observe("never.hist", 1.0)
        obs.gauge_set("never.gauge", 2.0)
    assert obs.open_span_count() == 0
    assert obs.snapshot_spans() == []
    snap = obs.metrics_snapshot()
    assert snap["counters"] == {}
    assert snap["gauges"] == {}
    assert snap["histograms"] == {}
    assert obs.export_obs_state() is None


def test_disabled_overhead_guard_full_solver():
    """Flight-recorder guard: a real solve with every obs feature off
    leaves zero footprint — no spans, no metrics, no profiler/timeline/
    reporter thread, no tracemalloc, and the watermark helper still
    hands out the shared no-op singleton."""
    import threading
    import tracemalloc

    from repro.obs import profile as prof

    problem = paper_scenario(num_users=120, num_uavs=4, scale="small", seed=5)
    threads_before = set(threading.enumerate())
    assert not obs.is_enabled()
    assert prof.active() is None

    result = appro_alg(problem, s=2, gain_mode="fast")

    assert result.served > 0
    assert set(threading.enumerate()) == threads_before
    daemon_names = {t.name for t in threading.enumerate()}
    assert not daemon_names & {
        "repro-profiler", "repro-timeline", "repro-live-reporter",
    }
    assert not tracemalloc.is_tracing()
    assert prof.active() is None
    assert obs.stage_watermark("solve") is prof._NULL_WATERMARK
    assert obs.snapshot_spans() == [] and obs.open_span_count() == 0
    snap = obs.metrics_snapshot()
    assert snap["counters"] == {} and snap["gauges"] == {}
