"""Tests for ``repro.obs.timeline`` — ring buffer, persistence, wiring.

Covers the recorder's snapshot shape, the bounded-ring drop accounting,
the JSONL round-trip (standalone files and trace embedding), the
LiveReporter attachment (one daemon drives both), and the sparkline
rendering ``repro trace-report`` builds on.
"""

from __future__ import annotations

import io
import itertools

import pytest

from repro import obs
from repro.obs import timeline as tl
from repro.obs.timeline import (
    TimelineConfig,
    TimelineRecorder,
    read_timeline,
    write_timeline,
)
from repro.util.charts import sparkline


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _fake_clock(step: float = 1.0):
    counter = itertools.count()
    return lambda: next(counter) * step


def test_config_validation():
    with pytest.raises(ValueError):
        TimelineConfig(interval_s=0)
    with pytest.raises(ValueError):
        TimelineConfig(capacity=0)


# -- snapshot shape ----------------------------------------------------------


def test_record_splits_worker_gauges_from_the_rest():
    obs.enable()
    obs.counter_inc("approx.subsets_done", 7)
    obs.gauge_set("approx.worker.1234.subsets", 5)
    obs.gauge_set("mission.served", 371)
    recorder = TimelineRecorder(clock=_fake_clock())
    snap = recorder.record()
    assert snap["t_s"] == 0.0
    assert snap["counters"]["approx.subsets_done"] == 7
    assert snap["workers"] == {"1234": 5}
    assert snap["gauges"] == {"mission.served": 371}
    assert snap["rss_mb"] is None or snap["rss_mb"] > 0
    # t_s is relative to the first snapshot, monotone increasing.
    assert recorder.record()["t_s"] > 0.0


def test_ring_drops_oldest_and_counts():
    recorder = TimelineRecorder(
        TimelineConfig(interval_s=0.01, capacity=3), clock=_fake_clock()
    )
    for _ in range(5):
        recorder.record()
    assert len(recorder) == 3
    assert recorder.dropped == 2
    times = [s["t_s"] for s in recorder.snapshots()]
    assert times == sorted(times) and times[0] > 0.0  # oldest two fell off
    assert recorder.last() == recorder.snapshots()[-1]


# -- persistence -------------------------------------------------------------


def test_timeline_file_roundtrip(tmp_path):
    obs.enable()
    recorder = TimelineRecorder(
        TimelineConfig(interval_s=0.5, capacity=8), clock=_fake_clock()
    )
    obs.counter_inc("approx.subsets_done", 3)
    recorder.record()
    obs.counter_inc("approx.subsets_done", 4)
    recorder.record()

    path = write_timeline(tmp_path / "t.jsonl", recorder)
    meta, snapshots = read_timeline(path)
    assert meta["schema"] == tl.SCHEMA_VERSION
    assert meta["interval_s"] == 0.5
    assert meta["snapshots"] == 2 and meta["dropped"] == 0
    assert snapshots == recorder.snapshots()


def test_read_timeline_rejects_unknown_record_type(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"type": "mystery"}\n')
    with pytest.raises(ValueError, match="mystery"):
        read_timeline(path)


def test_trace_report_accepts_standalone_timeline_file(tmp_path):
    # A bare --timeline file (timeline-meta header + snapshots) must be
    # readable by trace-report, not just timelines embedded in a trace.
    from repro.obs.report import trace_report

    recorder = TimelineRecorder(clock=_fake_clock())
    obs.counter_inc("approx.subsets_done", 5)
    recorder.record()
    path = write_timeline(tmp_path / "t.jsonl", recorder)

    text = trace_report(path)
    assert "timeline (1 snapshots" in text


def test_trace_embeds_timeline_records(tmp_path):
    obs.enable()
    recorder = TimelineRecorder(clock=_fake_clock())
    obs.counter_inc("approx.subsets_done", 2)
    recorder.record()
    recorder.record()
    spans: list = []
    metrics = obs.metrics_snapshot()

    manifest = obs.RunManifest(command="test", seed=1)
    path = obs.write_trace(tmp_path / "trace.jsonl", manifest, spans,
                           metrics, timeline=recorder.snapshots())
    data = obs.read_trace(path)
    assert data.timeline == recorder.snapshots()
    summary = obs.summarize(data)
    assert "timeline (2 snapshots" in summary
    assert "done" in summary


# -- derived series ----------------------------------------------------------


def _synthetic_snapshots() -> list:
    return [
        {"t_s": 0.0, "counters": {"approx.subsets_done": 0},
         "workers": {}, "gauges": {}, "rss_mb": 40.0},
        {"t_s": 1.0, "counters": {"approx.subsets_done": 10},
         "workers": {"1": 6, "2": 4}, "gauges": {}, "rss_mb": 44.0},
        {"t_s": 3.0, "counters": {"approx.subsets_done": 14},
         "workers": {"1": 8, "2": 6}, "gauges": {}, "rss_mb": None},
    ]


def test_derived_series():
    snaps = _synthetic_snapshots()
    assert tl.counter_series(snaps, "approx.subsets_done") == [0, 10, 14]
    assert tl.rate_series(snaps) == [10.0, 2.0]
    assert tl.rss_series(snaps) == [40.0, 44.0]
    assert tl.worker_totals(snaps) == {"1": 8, "2": 6}


def test_rate_series_clamps_resets_to_zero():
    snaps = [
        {"t_s": 0.0, "counters": {"approx.subsets_done": 9}},
        {"t_s": 1.0, "counters": {"approx.subsets_done": 4}},
    ]
    assert tl.rate_series(snaps) == [0.0]


# -- sparklines --------------------------------------------------------------


def test_sparkline_shapes():
    assert sparkline([]) == "(no data)"
    assert len(sparkline(list(range(100)), width=20)) == 20
    ramp = sparkline([0, 1, 2, 3], width=4)
    assert ramp[0] != ramp[-1]  # intensity moves with the data
    flat = sparkline([5, 5, 5], width=3)
    assert len(set(flat)) == 1  # constant series renders uniformly
    with pytest.raises(ValueError):
        sparkline([1], width=0)


# -- driving modes -----------------------------------------------------------


def test_live_reporter_drives_attached_recorder():
    """One daemon serves both: every reporter sample records a snapshot."""
    obs.enable()
    obs.counter_inc("approx.subsets_planned", 10)
    recorder = TimelineRecorder(clock=_fake_clock())
    reporter = obs.LiveReporter(
        obs.LiveConfig(interval_s=0.01, stall_intervals=10**6,
                       stream=io.StringIO()),
        timeline=recorder,
    )
    reporter.sample()
    obs.counter_inc("approx.subsets_done", 10)
    reporter.sample()
    assert len(recorder) == reporter.samples_taken == 2
    assert tl.counter_series(recorder.snapshots(),
                             "approx.subsets_done") == [0, 10]


def test_standalone_daemon_records_final_snapshot():
    obs.enable()
    obs.counter_inc("approx.subsets_done", 5)
    recorder = TimelineRecorder(TimelineConfig(interval_s=60.0))
    with recorder:
        assert recorder.running
        with pytest.raises(RuntimeError, match="already running"):
            recorder.start()
    assert not recorder.running
    # The interval never elapsed, but stop() lands one closing snapshot
    # carrying the final cumulative counters.
    assert len(recorder) >= 1
    assert recorder.last()["counters"]["approx.subsets_done"] == 5
