"""Tests for the Theorem 1 approximation-ratio formulas."""

import math

import pytest

from repro.core.ratio import approximation_ratio, l1_of, ratio_order_of_magnitude


class TestL1:
    def test_closed_form(self):
        # K = 20, s = 3: floor(sqrt(240 + 36 - 25.5)) - 6 + 2
        expected = math.floor(math.sqrt(4 * 3 * 20 + 4 * 9 - 8.5 * 3)) - 4
        assert l1_of(20, 3) == expected

    def test_grows_with_k(self):
        values = [l1_of(k, 3) for k in range(3, 100)]
        assert values == sorted(values)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            l1_of(20, 0)
        with pytest.raises(ValueError):
            l1_of(2, 3)


class TestApproximationRatio:
    def test_at_most_one_third(self):
        # Delta >= 1 always, so the ratio is at most 1/3.
        for k in range(2, 60):
            for s in range(1, min(k, 5) + 1):
                assert 0 < approximation_ratio(k, s) <= 1 / 3

    def test_improves_with_s(self):
        for k in (20, 50, 100):
            ratios = [approximation_ratio(k, s) for s in (1, 2, 3, 4)]
            assert all(b >= a for a, b in zip(ratios, ratios[1:]))

    def test_degrades_with_k(self):
        ratios = [approximation_ratio(k, 3) for k in (10, 40, 160, 640)]
        assert all(b <= a for a, b in zip(ratios, ratios[1:]))

    def test_order_of_magnitude(self):
        """The closed-form ratio is Theta(sqrt(s/K)): within a constant
        factor of sqrt(s/K)/3 for large K."""
        for k in (50, 200, 1000):
            for s in (1, 2, 3):
                exact = approximation_ratio(k, s)
                asymptotic = ratio_order_of_magnitude(k, s)
                assert asymptotic / 4 <= exact <= asymptotic * 4

    def test_rejects_k1(self):
        with pytest.raises(ValueError):
            approximation_ratio(1, 1)
