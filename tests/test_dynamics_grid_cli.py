"""Seed-grid driver and ``repro dynamic`` / ``repro runs compare`` CLI."""

import json

import pytest

from repro.cli import main
from repro.dynamics import DynamicSpec, run_dynamic, run_seed_grid


def tiny_spec(**overrides) -> DynamicSpec:
    base = dict(
        name="cli-t", scale="small", num_users=25, num_uavs=3, seed=2,
        algorithm="approAlg",
        algorithm_params={"s": 1, "gain_mode": "fast",
                          "max_anchor_candidates": 6},
        duration_s=120.0, epoch_s=40.0, arrival_rate_per_s=0.05,
        mean_dwell_s=100.0, mobility_sigma_m=15.0,
    )
    base.update(overrides)
    return DynamicSpec(**base)


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "mission.json"
    path.write_text(json.dumps(tiny_spec().to_dict()))
    return str(path)


class TestSeedGrid:
    def test_grid_runs_consecutive_seeds(self):
        spec = tiny_spec()
        grid = run_seed_grid(spec, num_seeds=3)
        assert grid.seeds == [2, 3, 4]
        assert len(grid.results) == 3
        # Per-seed results match standalone runs of the same seed.
        from dataclasses import replace

        solo = run_dynamic(replace(spec, seed=3))
        assert grid.results[1].timeline == solo.timeline

    def test_aggregate_and_text(self):
        grid = run_seed_grid(tiny_spec(), num_seeds=2)
        agg = grid.aggregate()
        assert 0.0 <= agg["min_coverage"] <= agg["mean_coverage"] <= 1.0
        text = grid.to_text()
        assert "all" in text
        data = grid.to_dict()
        assert json.loads(json.dumps(data)) == data


class TestDynamicCli:
    def test_preset_single_run(self, capsys):
        assert main([
            "dynamic", "--scenario", "dynamic-small", "--duration", "100",
            "--epoch", "50",
        ]) == 0
        out = capsys.readouterr().out
        assert "re-solves" in out
        assert "coverage mean" in out

    def test_spec_file_and_overrides(self, spec_file, capsys):
        assert main([
            "dynamic", "--scenario", spec_file, "--seed", "9",
            "--policy", "event", "--cold",
        ]) == 0
        out = capsys.readouterr().out
        assert "cold" in out
        assert "event" in out

    def test_seed_grid_table(self, spec_file, capsys):
        assert main([
            "dynamic", "--scenario", spec_file, "--seeds", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "seed" in out
        assert "all" in out

    def test_unknown_scenario_errors(self, capsys):
        assert main(["dynamic", "--scenario", "not-a-preset"]) == 2
        assert "error" in capsys.readouterr().err

    def test_record_bench_merges_point(self, spec_file, capsys, monkeypatch):
        import repro.obs.bench as bench

        recorded = {}

        def fake_record(**kwargs):
            recorded.update(kwargs)
            return "BENCH_approx.json"

        monkeypatch.setattr(bench, "record_trajectory_point", fake_record)
        assert main([
            "dynamic", "--scenario", spec_file, "--record-bench",
        ]) == 0
        assert recorded["scenario"] == "run:cli-t"
        assert recorded["algorithm"] == "approAlg"
        assert recorded["warm_median_resolve_s"] is not None
        assert recorded["cold_median_resolve_s"] is not None
        assert "speedup" in recorded
        assert "perf point run:cli-t" in capsys.readouterr().out


class TestRunsCompareCoverage:
    def test_compare_archived_dynamic_runs(
        self, spec_file, tmp_path, capsys
    ):
        root = str(tmp_path / "runs")
        for seed in ("2", "3"):
            assert main([
                "dynamic", "--scenario", spec_file, "--seed", seed,
                "--archive", "--archive-root", root,
            ]) == 0
        out = capsys.readouterr().out
        assert "run archived as run-0001" in out
        assert "run archived as run-0002" in out

        code = main([
            "runs", "compare", "run-0001", "run-0002", "--root", root,
            "--threshold", "10.0",  # huge: timing noise must not fail this
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "coverage over time (fraction" in out
        for row in ("mean", "min", "final"):
            assert row in out

    def test_compare_without_timelines_omits_coverage(
        self, tmp_path, capsys
    ):
        root = str(tmp_path / "runs")
        for seed in ("1", "2"):
            assert main([
                "run", "--scenario", "demo-small", "--seed", seed,
                "--archive", "--archive-root", root,
            ]) == 0
        capsys.readouterr()
        main([
            "runs", "compare", "run-0001", "run-0002", "--root", root,
            "--threshold", "10.0",
        ])
        out = capsys.readouterr().out
        assert "runs compare" in out
        assert "coverage over time" not in out
