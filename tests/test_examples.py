"""Keep the example scripts importable (and run the fastest end to end).

Executing every example is minutes of work that belongs to manual runs;
importing them catches bitrot (renamed APIs, syntax errors) in
milliseconds because all imports are at module top level.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


def load_module(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports(path):
    module = load_module(path)
    assert hasattr(module, "main"), f"{path.name} must expose main()"


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "disaster_response",
        "fleet_planning",
        "algorithm_comparison",
        "mission_operations",
        "capacity_study",
        "qos_planning",
        "paper_figures",
    } <= names


def test_quickstart_runs_end_to_end(capsys):
    module = load_module(Path(__file__).parent.parent / "examples"
                         / "quickstart.py")
    module.main()
    out = capsys.readouterr().out
    assert "approAlg served" in out
    assert "UAV" in out
