"""Differential oracle pass: solver outputs vs the brute-force optimum.

Every instance here is small enough for :func:`repro.core.exact.exact_optimum`
to enumerate, so three things can be asserted exactly on ~50 seeded
instances:

* soundness — no algorithm ever serves more than the optimum (an
  algorithm beating the exhaustive oracle means one of the two is wrong);
* Theorem 1 — ``appro_alg`` serves at least
  ``approximation_ratio(K, s) * OPT`` (the ``O(sqrt(s/K))`` guarantee from
  :mod:`repro.core.ratio`);
* baselines — each algorithm in :mod:`repro.baselines` is individually
  bounded by the oracle (``Unconstrained`` by the connectivity-free one,
  which dominates the connected optimum).

The oracle value is cached per instance so the ~7 per-instance checks pay
for one enumeration.
"""

from __future__ import annotations

import pytest

from repro.baselines.greedy_assign import greedy_assign
from repro.baselines.max_throughput import max_throughput
from repro.baselines.mcs import mcs
from repro.baselines.motionctrl import motion_ctrl
from repro.baselines.random_connected import random_connected
from repro.baselines.unconstrained import unconstrained_greedy
from repro.core.approx import appro_alg
from repro.core.exact import exact_optimum_value
from repro.core.ratio import approximation_ratio
from repro.workload.scenarios import paper_scenario
from tests.conftest import make_line_instance

# Baselines that must respect the *connected* optimum; Unconstrained is
# checked against the connectivity-free oracle separately.
CONNECTED_BASELINES = {
    "GreedyAssign": greedy_assign,
    "maxThroughput": max_throughput,
    "MCS": mcs,
    "MotionCtrl": motion_ctrl,
    "RandomConnected": random_connected,
}

# ~50 instances: (kind, spec).  Line instances are deterministic
# geometries with known structure; "small"-scale paper scenarios are
# seeded random draws on the 9-location grid (K <= 4 keeps the oracle
# enumeration under ~0.3 s each).
LINE_SPECS = [
    # (num_locations, users_per_location, capacities)
    (4, 3, (3, 3, 3)),
    (4, (1, 5, 2, 4), (4, 4)),
    (4, (6, 1, 1, 6), (6, 2, 2)),
    (5, 2, (2, 2, 2)),
    (5, 4, (4, 4, 4)),
    (5, (5, 1, 3, 1, 5), (5, 3, 1)),
    (5, 3, (1, 2, 3, 4)),
    (6, 2, (2, 2, 2)),
    (6, (4, 1, 4, 1, 4, 1), (4, 4, 4)),
    (6, 3, (3, 1, 3, 1)),
]

SMALL_SPECS = [
    # (num_users, num_uavs, seed)
    *[(35, 3, seed) for seed in range(10)],
    *[(50, 3, seed) for seed in range(10, 20)],
    *[(45, 4, seed) for seed in range(20, 28)],
    *[(60, 4, seed) for seed in range(28, 36)],
    *[(25, 2, seed) for seed in range(36, 40)],
]

ALL_SPECS = [("line", spec) for spec in LINE_SPECS] + [
    ("small", spec) for spec in SMALL_SPECS
]


def _build(kind: str, spec: tuple):
    if kind == "line":
        m, users, caps = spec
        return make_line_instance(
            num_locations=m, users_per_location=users, capacities=caps
        )
    n, k, seed = spec
    return paper_scenario(num_users=n, num_uavs=k, scale="small", seed=seed)


@pytest.fixture(scope="module")
def oracle_cache():
    """(kind, spec) -> (problem, OPT_connected, OPT_unconstrained)."""
    cache: dict = {}

    def get(kind: str, spec: tuple):
        key = (kind, spec)
        if key not in cache:
            problem = _build(kind, spec)
            cache[key] = (
                problem,
                exact_optimum_value(problem),
                exact_optimum_value(problem, require_connected=False),
            )
        return cache[key]

    return get


@pytest.mark.parametrize("kind,spec", ALL_SPECS)
def test_appro_alg_within_oracle_and_ratio(kind, spec, oracle_cache):
    problem, opt, _ = oracle_cache(kind, spec)
    k = problem.num_uavs
    s = min(2, k)
    served = appro_alg(problem, s=s).served
    assert served <= opt, (
        f"appro_alg served {served} > brute-force optimum {opt}"
    )
    if k >= 2:
        alpha = approximation_ratio(k, s)
        assert served >= alpha * opt, (
            f"Theorem 1 violated: served {served} < "
            f"{alpha:.4f} * OPT ({opt}) on {kind} {spec}"
        )


@pytest.mark.parametrize("kind,spec", ALL_SPECS)
def test_baselines_bounded_by_oracle(kind, spec, oracle_cache):
    problem, opt, opt_free = oracle_cache(kind, spec)
    for name, algorithm in CONNECTED_BASELINES.items():
        served = algorithm(problem).served_count
        assert served <= opt, (
            f"{name} served {served} > connected optimum {opt} "
            f"on {kind} {spec}"
        )
    served = unconstrained_greedy(problem).served_count
    assert served <= opt_free, (
        f"Unconstrained served {served} > connectivity-free optimum "
        f"{opt_free} on {kind} {spec}"
    )
    assert opt <= opt_free, "dropping a constraint can only help the oracle"
