"""Tests pinning the paper's headline experimental claims at reduced scale.

These are the assertions a reviewer would check first: the proposed
algorithm beats every baseline on the paper's own scenario family, the
figures' growth directions hold, and the s-tradeoff behaves as described.
Scales are trimmed so the whole module runs in seconds.
"""

import pytest

from repro.core.approx import appro_alg
from repro.sim.runner import run_algorithm
from repro.workload.scenarios import paper_scenario

BASELINES = ("maxThroughput", "MotionCtrl", "MCS", "GreedyAssign")


@pytest.fixture(scope="module")
def headline_problem():
    """A capacity-tight slice of the Section IV-A scenario."""
    return paper_scenario(num_users=1200, num_uavs=12, scale="bench", seed=7)


@pytest.fixture(scope="module")
def appro_served(headline_problem):
    return appro_alg(
        headline_problem, s=2, gain_mode="fast", max_anchor_candidates=8
    ).served


class TestHeadlineClaim:
    def test_beats_every_baseline(self, headline_problem, appro_served):
        """Fig. 4/5's core claim: approAlg serves the most users."""
        for name in BASELINES:
            baseline = run_algorithm(headline_problem, name).served
            assert appro_served >= baseline, (
                f"approAlg ({appro_served}) lost to {name} ({baseline})"
            )

    def test_margin_over_weakest_is_material(self, headline_problem,
                                             appro_served):
        """The paper reports up to 22% over the baselines; at our reduced
        scale the margin over the weakest baseline should still be >= 5%."""
        weakest = min(
            run_algorithm(headline_problem, name).served
            for name in BASELINES
        )
        assert appro_served >= 1.05 * weakest

    def test_s_tradeoff_directions(self, headline_problem):
        """Fig. 6: quality non-decreasing in s (within noise), runtime
        increasing in s."""
        import time

        served = {}
        runtime = {}
        for s in (1, 2, 3):
            t0 = time.perf_counter()
            served[s] = appro_alg(
                headline_problem, s=s, gain_mode="fast",
                max_anchor_candidates=8,
            ).served
            runtime[s] = time.perf_counter() - t0
        assert served[3] >= served[1] * 0.98
        assert runtime[3] > runtime[1]

    def test_capacity_awareness_matters(self, headline_problem):
        """The motivating scenario of Section I: a capacity-blind variant
        (UAVs deployed in index order rather than capacity order) must not
        beat the capacity-sorted Algorithm 2 on capacity-tight instances.

        (Both are run through the same pipeline; only the deployment order
        differs.)"""
        from repro.core.connect import connect_and_deploy
        from repro.core.greedy import anchored_greedy
        from repro.core.segments import optimal_segments

        problem = headline_problem
        plan = optimal_segments(problem.num_uavs, 2)
        strongest = problem.fleet[problem.capacity_order()[0]]
        anchors = sorted(
            range(problem.num_locations),
            key=lambda v: -problem.graph.coverage_count(v, strongest),
        )[:2]

        def run_order(order):
            greedy = anchored_greedy(problem, anchors, plan, order=order,
                                     gain_mode="fast")
            sol = connect_and_deploy(problem, greedy, order=order,
                                     gain_mode="fast")
            return 0 if sol is None else sol.served

        sorted_served = run_order(problem.capacity_order())
        index_served = run_order(list(range(problem.num_uavs)))
        assert sorted_served >= index_served * 0.97