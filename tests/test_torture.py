"""Randomised end-to-end torture tests: every optional feature composed.

Each example draws a scenario exercising a random combination of the
library's knobs — altitude layers, mixed QoS classes, heterogeneous
radii, capacity spreads — runs the full pipeline (plan, validate, report,
audit, endurance, failure analysis), and checks the cross-cutting
invariants hold together, not just per-module.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.interference import audit_interference
from repro.core.approx import appro_alg
from repro.core.assignment import max_served
from repro.core.problem import ProblemInstance
from repro.network.energy import mission_endurance_s
from repro.network.fleet import heterogeneous_fleet
from repro.network.resilience import single_failure_impacts
from repro.network.spectrum import allocate_channels
from repro.network.validate import validate_deployment
from repro.sim.metrics import summarize
from repro.sim.report import deployment_report
from repro.workload.fat_tailed import FatTailedWorkload
from repro.workload.scenarios import SCALES, build_scenario


def random_problem(seed: int) -> ProblemInstance:
    rng = np.random.default_rng(seed)
    layers = (
        (250.0, 300.0) if rng.random() < 0.3 else ()
    )
    rate_classes = (
        ((0.7, 2_000.0), (0.3, 1.0e6)) if rng.random() < 0.4 else None
    )
    config = SCALES["small"].with_overrides(
        num_users=int(rng.integers(30, 150)),
        num_uavs=int(rng.integers(2, 7)),
        capacity_min=int(rng.integers(1, 20)),
        capacity_max=int(rng.integers(20, 80)),
        altitude_layers_m=layers,
        environment=str(
            rng.choice(["suburban", "urban", "dense-urban"])
        ),
        workload=FatTailedWorkload(
            num_hotspots=int(rng.integers(1, 6)),
            rate_classes=rate_classes,
        ),
    )
    problem = build_scenario(config, seed=int(rng.integers(0, 2**31)))
    if rng.random() < 0.3:
        fleet = heterogeneous_fleet(
            problem.num_uavs,
            capacity_min=config.capacity_min,
            capacity_max=config.capacity_max,
            heterogeneous_ranges=True,
            seed=int(rng.integers(0, 2**31)),
        )
        problem = ProblemInstance(graph=problem.graph, fleet=fleet)
    return problem


@given(st.integers(0, 10_000))
@settings(max_examples=12, deadline=None)
def test_full_pipeline_invariants(seed):
    problem = random_problem(seed)
    result = appro_alg(
        problem, s=2, gain_mode="fast",
        max_anchor_candidates=min(8, problem.num_locations),
    )
    deployment = result.deployment

    # 1. Feasibility (independent validator).
    validate_deployment(problem.graph, problem.fleet, deployment)

    # 2. Declared objective equals an independent exact recount.
    assert result.served == max_served(
        problem.graph, problem.fleet, deployment.placements
    )

    # 3. Metrics are internally consistent.
    metrics = summarize(problem, deployment)
    assert metrics.served == result.served
    assert 0.0 <= metrics.served_fraction <= 1.0
    if metrics.served:
        assert metrics.throughput_bps > 0
        assert metrics.mean_rate_bps * metrics.served == pytest.approx(
            metrics.throughput_bps
        )

    # 4. Failure analysis accounts exactly.
    for fi in single_failure_impacts(problem, deployment):
        assert fi.served_after + fi.served_lost == result.served

    # 5. Spectrum plan is a proper colouring and never hurts the audit.
    if deployment.placements:
        plan = allocate_channels(problem, deployment)
        reuse1 = audit_interference(problem, deployment)
        clean = audit_interference(problem, deployment, channel_plan=plan)
        assert clean.mean_sinr_loss_db <= reuse1.mean_sinr_loss_db + 1e-9
        assert clean.still_satisfied >= reuse1.still_satisfied

    # 6. Endurance is positive and finite for non-empty deployments.
    if deployment.placements:
        endurance = mission_endurance_s(problem.fleet, deployment)
        assert 0 < endurance < float("inf")

    # 7. The composed report renders without error and is self-consistent.
    report = deployment_report(problem, deployment, include_map=False)
    assert f"served {result.served}/{problem.num_users}" in report
