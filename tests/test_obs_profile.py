"""Tests for ``repro.obs.profile`` — sampler, watermarks, RSS readers.

The profiler's contract has two halves: while running it observes real
stacks, tracks per-stage memory peaks (nesting-safe), and exports valid
speedscope/collapsed artifacts; while *not* running it is provably free
(no thread, no tracemalloc, a shared no-op watermark singleton).
"""

from __future__ import annotations

import json
import threading
import time
import tracemalloc

import pytest

from repro.obs import profile as prof
from repro.obs.profile import (
    ProfileConfig,
    SamplingProfiler,
    current_rss_mb,
    peak_rss_mb,
    stage_watermark,
)


@pytest.fixture(autouse=True)
def _no_leftover_profiler():
    assert prof.active() is None, "a profiler leaked from another test"
    yield
    assert prof.active() is None, "a test left its profiler active"


def test_config_validation():
    with pytest.raises(ValueError):
        ProfileConfig(hz=0)
    with pytest.raises(ValueError):
        ProfileConfig(hz=20_000)
    with pytest.raises(ValueError):
        ProfileConfig(max_stack_depth=0)


# -- sampling ----------------------------------------------------------------


def test_sample_once_observes_current_stacks():
    """Thread-free determinism: one manual sample sees this very test."""
    p = SamplingProfiler(ProfileConfig(memory=False))
    recorded = p.sample_once()
    assert recorded >= 1
    assert p.samples == recorded
    labels = {label for stack in p.stacks for label in stack}
    assert any("test_obs_profile.py" in label for label in labels)
    # Stacks are root-first: the leaf of this thread's stack is the
    # sampling helper itself, not the interpreter entry point.
    (own,) = [s for s in p.stacks
              if any("sample_once" in frame for frame in s)]
    assert "sample_once" in own[-1]


def test_sampler_thread_captures_busy_worker():
    stop = threading.Event()

    def _spin():
        while not stop.is_set():
            sum(range(200))

    worker = threading.Thread(target=_spin, name="busy", daemon=True)
    worker.start()
    try:
        with SamplingProfiler(ProfileConfig(hz=250.0, memory=False)) as p:
            time.sleep(0.12)
    finally:
        stop.set()
        worker.join()
    assert p.samples > 0
    assert p.duration_s > 0.0
    labels = {label for stack in p.stacks for label in stack}
    assert any("_spin" in label for label in labels)
    assert p.peak_rss_mb is None or p.peak_rss_mb > 0


def test_max_stack_depth_truncates():
    def recurse(n):
        if n == 0:
            p = SamplingProfiler(ProfileConfig(memory=False,
                                               max_stack_depth=5))
            p.sample_once()
            return p
        return recurse(n - 1)

    p = recurse(30)
    assert all(len(stack) <= 5 for stack in p.stacks)


def test_second_start_raises_and_stop_clears_slot():
    p = SamplingProfiler(ProfileConfig(hz=50.0, memory=False)).start()
    try:
        assert prof.active() is p
        with pytest.raises(RuntimeError, match="already active"):
            SamplingProfiler().start()
    finally:
        p.stop()
    assert prof.active() is None
    assert not p.running


# -- memory watermarks -------------------------------------------------------


def test_watermark_nesting_folds_child_peak_into_parent():
    """A child stage's allocation peak must count toward its parent even
    though the child resets tracemalloc's peak window on exit."""
    with SamplingProfiler(ProfileConfig(hz=10.0, memory=True)) as p:
        with stage_watermark("outer"):
            with stage_watermark("inner"):
                blob = bytearray(4 * 1024 * 1024)
            del blob
    assert not tracemalloc.is_tracing()
    mb = p.memory_stages_mb()
    assert mb["inner"] >= 3.5
    assert mb["outer"] >= mb["inner"]


def test_watermark_is_null_singleton_when_off():
    assert prof.active() is None
    null = stage_watermark("anything")
    assert stage_watermark("other") is null
    with null:
        pass  # usable, records nothing
    # memory=False keeps the null path even with a profiler running.
    with SamplingProfiler(ProfileConfig(hz=10.0, memory=False)) as p:
        assert stage_watermark("x") is null
    assert p.memory_stages == {}


# -- process memory readers --------------------------------------------------


def test_rss_readers_return_positive_or_none():
    peak = peak_rss_mb()
    now = current_rss_mb()
    assert peak is None or peak > 0
    assert now is None or now > 0
    if peak is not None and now is not None:
        # High-water mark can't sit below the current RSS by much; allow
        # slack for page accounting between the two reads.
        assert peak >= now * 0.5


# -- exports -----------------------------------------------------------------


def _sampled_profiler() -> SamplingProfiler:
    p = SamplingProfiler(ProfileConfig(memory=False))
    for _ in range(3):
        p.sample_once()
    assert p.samples > 0
    return p


def test_collapsed_format_and_totals():
    p = _sampled_profiler()
    text = p.collapsed()
    lines = text.strip().splitlines()
    assert lines
    total = 0
    for line in lines:
        stack, count = line.rsplit(" ", 1)
        assert ";" in stack or ":" in stack
        total += int(count)
    assert total == p.samples


def test_speedscope_export_is_valid(tmp_path):
    p = _sampled_profiler()
    doc = p.speedscope(name="unit")
    assert doc["$schema"] == prof.SPEEDSCOPE_SCHEMA
    frames = doc["shared"]["frames"]
    (profile,) = doc["profiles"]
    assert profile["type"] == "sampled"
    assert len(profile["samples"]) == len(profile["weights"])
    for sample in profile["samples"]:
        assert all(0 <= i < len(frames) for i in sample)
    assert sum(profile["weights"]) == p.samples
    assert profile["endValue"] == p.samples

    path = p.write_speedscope(tmp_path / "p.speedscope.json", name="unit")
    assert json.loads(path.read_text())["name"] == "unit"


def test_to_dict_is_json_safe_and_complete():
    p = _sampled_profiler()
    data = json.loads(json.dumps(p.to_dict()))
    assert data["schema"] == 1
    assert data["samples"] == p.samples
    assert sum(entry["count"] for entry in data["stacks"]) == p.samples
    assert all(isinstance(entry["frames"], list) for entry in data["stacks"])


def test_top_functions_aggregates_by_leaf():
    p = SamplingProfiler(ProfileConfig(memory=False))
    p.stacks[("a.py:root", "b.py:leaf")] = 3
    p.stacks[("c.py:other", "b.py:leaf")] = 2
    p.stacks[("a.py:root",)] = 1
    p.samples = 6
    assert p.top_functions(limit=1) == [("b.py:leaf", 5)]
