"""Tests for the exact throughput-optimal assignment (the [37] objective)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assignment import (
    max_throughput_assignment,
    optimal_assignment,
    total_rate_bps,
)
from repro.network.validate import validate_deployment
from tests.conftest import make_line_instance


def overlapping_problem(capacities=(2, 2, 2), spacing=300.0):
    return make_line_instance(
        num_locations=len(capacities), users_per_location=3,
        capacities=capacities, spacing=spacing,
    )


class TestMaxThroughputAssignment:
    def test_empty(self):
        problem = overlapping_problem()
        dep = max_throughput_assignment(problem.graph, problem.fleet, {})
        assert dep.served_count == 0

    def test_feasible(self):
        problem = overlapping_problem()
        placements = {0: 0, 1: 1, 2: 2}
        dep = max_throughput_assignment(
            problem.graph, problem.fleet, placements
        )
        validate_deployment(problem.graph, problem.fleet, dep,
                            require_connected=False)

    def test_beats_or_ties_coverage_optimal_in_rate(self):
        problem = overlapping_problem()
        placements = {0: 0, 1: 1, 2: 2}
        coverage = optimal_assignment(problem.graph, problem.fleet, placements)
        throughput = max_throughput_assignment(
            problem.graph, problem.fleet, placements
        )
        assert total_rate_bps(
            problem.graph, problem.fleet, throughput
        ) >= total_rate_bps(problem.graph, problem.fleet, coverage) - 1e-6

    def test_coverage_optimal_serves_at_least_as_many(self):
        problem = overlapping_problem()
        placements = {0: 0, 1: 1}
        coverage = optimal_assignment(problem.graph, problem.fleet, placements)
        throughput = max_throughput_assignment(
            problem.graph, problem.fleet, placements
        )
        assert coverage.served_count >= throughput.served_count

    def test_brute_force_on_tiny(self):
        """Exact optimality check against enumeration of all feasible
        assignments on a tiny overlapping instance."""
        problem = overlapping_problem(capacities=(1, 2), spacing=300.0)
        placements = {0: 0, 1: 1}
        graph, fleet = problem.graph, problem.fleet
        dep = max_throughput_assignment(graph, fleet, placements)
        got = total_rate_bps(graph, fleet, dep)

        coverable = {
            k: set(graph.coverable_users(loc, fleet[k]))
            for k, loc in placements.items()
        }
        options = []
        for u in range(graph.num_users):
            options.append(
                [None] + [k for k in placements if u in coverable[k]]
            )
        best = 0.0
        for combo in itertools.product(*options):
            loads: dict = {}
            ok = True
            rate = 0.0
            for u, k in enumerate(combo):
                if k is None:
                    continue
                loads[k] = loads.get(k, 0) + 1
                if loads[k] > fleet[k].capacity:
                    ok = False
                    break
                rate += graph.rate_bps(u, placements[k], fleet[k])
            if ok:
                best = max(best, rate)
        assert got == pytest.approx(best)

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_random_instances_consistent(self, seed):
        rng = np.random.default_rng(seed)
        problem = overlapping_problem(
            capacities=tuple(int(c) for c in rng.integers(1, 4, size=3)),
            spacing=float(rng.uniform(250, 450)),
        )
        placements = {k: k for k in range(3)}
        coverage = optimal_assignment(problem.graph, problem.fleet, placements)
        throughput = max_throughput_assignment(
            problem.graph, problem.fleet, placements
        )
        validate_deployment(problem.graph, problem.fleet, throughput,
                            require_connected=False)
        # The two exact optima bound each other's objectives.
        assert coverage.served_count >= throughput.served_count
        assert total_rate_bps(
            problem.graph, problem.fleet, throughput
        ) >= total_rate_bps(problem.graph, problem.fleet, coverage) - 1e-6
