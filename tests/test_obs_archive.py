"""Tests for ``repro.obs.archive`` and the kernel-attribution surface.

The archive's contract: every recorded run loads back byte-identical,
the index survives crashes (atomic writes), and ``compare_runs`` /
``perf-diff --attribute`` answer *which kernel* regressed — the
acceptance fixture below inflates ``gain_matrix_ms`` on an otherwise
steady trajectory and the attribution must name it.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.cli import main
from repro.obs.archive import RunArchive, compare_runs, span_totals
from repro.obs.regress import (
    IMPROVED,
    KERNEL_FIELDS,
    MISSING,
    NEW,
    REGRESSED,
    perf_diff,
)


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _manifest(wall_s: float = 1.0, command: str = "run") -> obs.RunManifest:
    return obs.RunManifest(command=command, seed=7, algorithm="approAlg",
                           wall_s=wall_s, created_unix=1700000000.0)


def _spans(solve_ms: float, gain_ms: float) -> list:
    return [
        {"name": "pipeline.solve", "duration_ns": int(solve_ms * 1e6),
         "index": 0},
        {"name": "approx.gain_matrix", "duration_ns": int(gain_ms * 1e6),
         "index": 1},
    ]


# -- span aggregation --------------------------------------------------------


def test_span_totals_aggregates_by_name():
    spans = [
        {"name": "a", "duration_ns": 2_000_000},
        {"name": "a", "duration_ns": 5_000_000},
        {"name": "b", "duration_ns": 1_000_000},
    ]
    totals = span_totals(spans)
    assert totals["a"] == {"count": 2, "total_ms": 7.0, "max_ms": 5.0}
    assert totals["b"]["count"] == 1
    assert span_totals(None) == {}


# -- record / load round-trip ------------------------------------------------


def test_record_and_load_roundtrip(tmp_path):
    archive = RunArchive(tmp_path / "runs")
    key = ("small", 300, 6)
    run_id = archive.record_run(
        _manifest(),
        metrics={"counters": {"x": 1}, "gauges": {}, "histograms": {}},
        spans=_spans(20.0, 10.0),
        timeline=[{"t_s": 0.0, "counters": {"approx.subsets_done": 3},
                   "workers": {}, "gauges": {}, "rss_mb": 40.0}],
        scenario_key=key,
        served=275,
    )
    assert run_id == "run-0001"
    run = archive.load(run_id)
    assert run.data["scenario_key"] == list(key)
    assert run.data["served"] == 275
    assert run.manifest.command == "run"
    assert run.kernels["approx.gain_matrix"]["total_ms"] == 10.0
    assert run.metrics["counters"] == {"x": 1}
    assert len(run.timeline) == 1 and run.timeline[0]["rss_mb"] == 40.0
    assert run.profile is None

    (entry,) = archive.list_runs()
    assert entry["id"] == run_id
    assert entry["has_timeline"] and not entry["has_profile"]
    assert entry["served"] == 275


def test_ids_are_sequential_and_unknown_id_raises(tmp_path):
    archive = RunArchive(tmp_path / "runs")
    assert archive.record_run(_manifest()) == "run-0001"
    assert archive.record_run(_manifest()) == "run-0002"
    with pytest.raises(KeyError, match="run-0001, run-0002"):
        archive.load("run-9999")


def test_archive_stores_profiler_artifacts(tmp_path):
    from repro.obs.profile import ProfileConfig, SamplingProfiler

    profiler = SamplingProfiler(ProfileConfig(memory=False))
    profiler.sample_once()
    archive = RunArchive(tmp_path / "runs")
    run_id = archive.record_run(_manifest(command="profile"),
                                profile=profiler)
    run = archive.load(run_id)
    assert run.profile["samples"] == profiler.samples
    speedscope = run.path / "profile.speedscope.json"
    assert json.loads(speedscope.read_text())["profiles"]


def test_corrupt_index_degrades_to_empty(tmp_path):
    root = tmp_path / "runs"
    root.mkdir()
    (root / "index.json").write_text("not {{{ json")
    archive = RunArchive(root)
    assert archive.list_runs() == []
    assert archive.record_run(_manifest()) == "run-0001"


# -- comparison --------------------------------------------------------------


def test_compare_runs_names_dominant_kernel(tmp_path):
    archive = RunArchive(tmp_path / "runs")
    base = archive.load(archive.record_run(
        _manifest(wall_s=1.0), spans=_spans(solve_ms=20.0, gain_ms=10.0)))
    cur = archive.load(archive.record_run(
        _manifest(wall_s=1.5), spans=_spans(solve_ms=21.0, gain_ms=30.0)))

    comparison = compare_runs(base, cur, threshold=0.15)
    assert comparison.wall_status == REGRESSED
    assert comparison.exit_code == 1
    dominant = comparison.dominant_regression
    assert dominant.kernel == "approx.gain_matrix"
    assert dominant.delta == pytest.approx(2.0)
    text = comparison.to_text()
    assert "REGRESSION: kernel 'approx.gain_matrix'" in text
    data = comparison.to_dict()
    assert data["dominant_regression"] == "approx.gain_matrix"


def test_compare_runs_clean_and_asymmetric_kernels(tmp_path):
    archive = RunArchive(tmp_path / "runs")
    base = archive.load(archive.record_run(
        _manifest(wall_s=1.0),
        spans=[{"name": "only.base", "duration_ns": 1_000_000}]))
    cur = archive.load(archive.record_run(
        _manifest(wall_s=1.0),
        spans=[{"name": "only.cur", "duration_ns": 1_000_000}]))
    comparison = compare_runs(base, cur)
    assert comparison.exit_code == 0
    assert comparison.dominant_regression is None
    statuses = {k.kernel: k.status for k in comparison.kernels}
    assert statuses == {"only.base": MISSING, "only.cur": NEW}
    assert "no regression" in comparison.to_text()


# -- perf-diff attribution (the acceptance fixture) --------------------------


def _point(**overrides) -> dict:
    point = {"scenario": "paper-headline", "algorithm": "approAlg",
             "served": 2500, "wall_s": 1.0, "workers": 1, "scale": "paper",
             "context_build_s": 0.20, "bound_pass_ms": 5.0,
             "gain_matrix_ms": 40.0}
    point.update(overrides)
    return point


def test_perf_diff_attribution_names_inflated_gain_matrix():
    """Seeded regression: wall +40% driven by gain_matrix_ms 40→90 while
    the other kernels hold — attribution must blame the gain matrix."""
    baseline = [_point()]
    current = [_point(wall_s=1.4, context_build_s=0.21, bound_pass_ms=5.1,
                      gain_matrix_ms=90.0)]
    diff = perf_diff(baseline, current, threshold=0.15)
    assert diff.exit_code == 1
    (delta,) = diff.entries
    assert delta.status == REGRESSED
    worst_name, worst_info = delta.worst_kernel()
    assert worst_name == "gain_matrix_ms"
    assert worst_info["delta"] == pytest.approx(1.25)
    (attr,) = diff.attribution()
    assert attr["kernel"] == "gain_matrix_ms"
    assert attr["current"] == 90.0
    assert "kernel 'gain_matrix_ms' 40 -> 90" in diff.attribution_text()
    # The default table now carries the kernel columns (satellite: the
    # recorded bound/gain timings surface without extra flags).
    text = diff.to_text()
    assert "bound ms" in text and "gain ms" in text and "90!" in text


def test_perf_diff_attribution_empty_when_kernels_hold():
    baseline = [_point()]
    current = [_point(wall_s=1.4)]  # slower, but no kernel moved
    diff = perf_diff(baseline, current, threshold=0.15)
    assert diff.exit_code == 1
    assert diff.attribution() == []
    assert "no kernel-level timings moved" in diff.attribution_text()


def test_kernel_fields_cover_the_recorded_timings():
    assert set(KERNEL_FIELDS) == {
        "context_build_s", "bound_pass_ms", "gain_matrix_ms",
    }


def test_improved_kernel_is_not_attributed():
    baseline = [_point()]
    current = [_point(gain_matrix_ms=10.0)]
    diff = perf_diff(baseline, current, threshold=0.15)
    (delta,) = diff.entries
    assert delta.kernels["gain_matrix_ms"]["status"] == IMPROVED
    assert delta.worst_kernel() is None


# -- CLI surface -------------------------------------------------------------


class TestRunsCli:
    def _seed_archive(self, root, gain_ms: float, wall_s: float) -> str:
        return RunArchive(root).record_run(
            _manifest(wall_s=wall_s), spans=_spans(20.0, gain_ms),
            scenario_key=("small", 300, 6), served=275)

    def test_list_empty_and_populated(self, capsys, tmp_path):
        root = tmp_path / "runs"
        assert main(["runs", "list", "--root", str(root)]) == 0
        assert "no archived runs" in capsys.readouterr().out
        self._seed_archive(root, gain_ms=10.0, wall_s=1.0)
        assert main(["runs", "list", "--root", str(root)]) == 0
        out = capsys.readouterr().out
        assert "run-0001" in out and "approAlg" in out

    def test_show_renders_kernels(self, capsys, tmp_path):
        root = tmp_path / "runs"
        run_id = self._seed_archive(root, gain_ms=10.0, wall_s=1.0)
        assert main(["runs", "show", run_id, "--root", str(root)]) == 0
        out = capsys.readouterr().out
        assert "approx.gain_matrix" in out and "kernel timings" in out

    def test_compare_exit_codes_and_verdict(self, capsys, tmp_path):
        root = tmp_path / "runs"
        a = self._seed_archive(root, gain_ms=10.0, wall_s=1.0)
        b = self._seed_archive(root, gain_ms=30.0, wall_s=1.5)
        assert main(["runs", "compare", a, a, "--root", str(root)]) == 0
        capsys.readouterr()
        assert main(["runs", "compare", a, b, "--root", str(root)]) == 1
        assert "kernel 'approx.gain_matrix'" in capsys.readouterr().out

    def test_bad_ids_and_arity_exit_two(self, capsys, tmp_path):
        root = str(tmp_path / "runs")
        assert main(["runs", "show", "run-0042", "--root", root]) == 2
        assert "error:" in capsys.readouterr().err
        assert main(["runs", "show", "--root", root]) == 2
        capsys.readouterr()
        assert main(["runs", "compare", "run-0001", "--root", root]) == 2
        assert "exactly two" in capsys.readouterr().err

    def test_perf_diff_attribute_flag(self, capsys, tmp_path):
        baseline = tmp_path / "base.json"
        current = tmp_path / "cur.json"
        baseline.write_text(json.dumps({"points": [_point()]}))
        current.write_text(json.dumps(
            {"points": [_point(wall_s=1.4, gain_matrix_ms=90.0)]}))
        assert main(["perf-diff", str(baseline), str(current),
                     "--attribute"]) == 1
        assert "kernel 'gain_matrix_ms'" in capsys.readouterr().out
        assert main(["perf-diff", str(baseline), str(current),
                     "--attribute", "--json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["attribution"][0]["kernel"] == "gain_matrix_ms"
