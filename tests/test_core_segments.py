"""Tests for Eq. 1, Eq. 2 and Algorithm 1 (repro.core.segments)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.segments import (
    brute_force_segments,
    hmax_of,
    optimal_segments,
    q_bounds,
    relay_bound,
)


class TestHmax:
    def test_paper_example(self):
        # Fig. 2(d): p = (1, 2, 2, 2), s = 3 -> hmax = 2.
        assert hmax_of([1, 2, 2, 2]) == 2

    def test_middle_segments_halved(self):
        # Middle segments are reached from both ends: ceil(p/2).
        assert hmax_of([0, 5, 0]) == 3
        assert hmax_of([0, 4, 0]) == 2

    def test_ends_full(self):
        assert hmax_of([5, 0, 0]) == 5
        assert hmax_of([0, 0, 5]) == 5

    def test_s_equals_one(self):
        # p = (p1, p2) only; no middle segments.
        assert hmax_of([3, 7]) == 7

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            hmax_of([3])
        with pytest.raises(ValueError):
            hmax_of([1, -1, 1])


class TestQBounds:
    def test_paper_example(self):
        # Section III-C worked example: L = 10, p = (1, 2, 2, 2):
        # Q0 = 10, Q1 = 7, Q2 = 1.
        assert q_bounds(10, [1, 2, 2, 2]) == [10, 7, 1]

    def test_q1_is_interior_count(self):
        # Q1 always equals sum(p) (= L - s when p is a full split).
        for p in ([1, 2, 2, 2], [3, 0, 1], [4, 4]):
            assert q_bounds(sum(p) + 5, p)[1] == sum(p)

    def test_zero_interior_has_only_q0(self):
        # hmax = 0 when all segments are empty: only Q0 exists.
        assert q_bounds(5, [0, 0]) == [5]

    def test_non_increasing(self):
        for p in ([1, 2, 2, 2], [5, 3, 4, 0, 2], [2, 2], [0, 7, 0]):
            q = q_bounds(sum(p) + len(p) - 1, p)
            assert all(a >= b for a, b in zip(q, q[1:]))

    def test_rejects_oversized_p(self):
        with pytest.raises(ValueError, match="sum"):
            q_bounds(3, [2, 2, 2])

    @given(st.lists(st.integers(0, 8), min_size=2, max_size=6))
    @settings(max_examples=60)
    def test_matches_direct_counting(self, p):
        """Q_h must equal counting nodes at >= h hops in an explicit path:
        p1 end nodes at hops 1..p1 from anchor 1, middle segments reached
        from both adjacent anchors, p_{s+1} from the last anchor."""
        length = sum(p) + len(p) - 1
        q = q_bounds(length, p)
        # Build explicit hop distances of the L path nodes.
        hops = [0] * (len(p) - 1)  # the anchors
        hops += list(range(1, p[0] + 1))          # first end segment
        for pi in p[1:-1]:                        # middle segments
            hops += [min(i + 1, pi - i) for i in range(pi)]
        hops += list(range(1, p[-1] + 1))         # last end segment
        for h, q_h in enumerate(q):
            assert q_h == sum(1 for d in hops if d >= h), (
                f"Q_{h} mismatch for p = {p}"
            )


class TestRelayBound:
    def test_paper_structure(self):
        # g(L, p) for p = (1, 2, 2, 2), s = 3:
        # s + (p2 + p3) + end(1) + middle(2) + middle(2) + end(2)
        # = 3 + 4 + 1 + 2 + 2 + 3 = 15.
        assert relay_bound([1, 2, 2, 2]) == 15

    def test_zero_interior(self):
        # Just the anchors: g = s.
        assert relay_bound([0, 0, 0, 0]) == 3
        assert relay_bound([0, 0]) == 1

    def test_middle_cost_integrality(self):
        for p in range(0, 30):
            assert relay_bound([0, p, 0]) == 2 + p + (p * p + 2 * p + p % 2) // 4

    @given(st.lists(st.integers(0, 10), min_size=2, max_size=6))
    def test_at_least_l(self, p):
        """g counts every sub-path node plus relays, so g >= s + interior
        nodes counted once: g >= max(s, ...) and specifically >= s."""
        s = len(p) - 1
        assert relay_bound(p) >= s


class TestOptimalSegments:
    def test_small_known_case(self):
        plan = optimal_segments(num_uavs=5, s=2)
        assert plan.lmax == 4
        assert plan.relay_bound <= 5

    def test_k20_s3_paper_setting(self):
        plan = optimal_segments(20, 3)
        assert plan.relay_bound <= 20
        assert plan.lmax >= 10  # sanity: a decent chunk of the 20 UAVs
        assert sum(plan.p) == plan.lmax - 3

    def test_l_equals_k_found_when_feasible(self):
        # K = s + 1 with one interior node: g = s + 1 <= K, so Lmax = K.
        for s in (1, 2, 3):
            plan = optimal_segments(s + 1, s)
            assert plan.lmax == s + 1

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            optimal_segments(3, 0)
        with pytest.raises(ValueError):
            optimal_segments(2, 3)

    @given(st.integers(1, 5), st.integers(1, 24))
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force(self, s, extra):
        num_uavs = s + extra
        fast = optimal_segments(num_uavs, s)
        slow = brute_force_segments(num_uavs, s)
        assert fast.lmax == slow.lmax, (
            f"L_max mismatch for K={num_uavs}, s={s}: "
            f"{fast.lmax} vs brute {slow.lmax}"
        )
        assert fast.relay_bound <= num_uavs
        assert fast.relay_bound == slow.relay_bound

    @given(st.integers(1, 4), st.integers(2, 30))
    @settings(max_examples=40, deadline=None)
    def test_plan_consistency(self, s, extra):
        plan = optimal_segments(s + extra, s)
        assert len(plan.p) == s + 1
        assert sum(plan.p) == plan.lmax - s
        assert relay_bound(list(plan.p)) == plan.relay_bound
        q = plan.q_bounds()
        assert q[0] == plan.lmax
        assert len(q) == plan.hmax + 1

    def test_lmax_monotone_in_k(self):
        values = [optimal_segments(k, 3).lmax for k in range(3, 40)]
        assert values == sorted(values)

    def test_lmax_grows_like_sqrt_sk(self):
        """Theorem 1: L_1 ~ sqrt(4 s K); Algorithm 1's Lmax should track
        that within a constant factor."""
        for s in (1, 2, 3):
            for k in (20, 50, 100):
                plan = optimal_segments(k, s)
                assert plan.lmax >= 0.8 * math.sqrt(4 * s * k) - 2 * s - 2
