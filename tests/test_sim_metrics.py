"""Tests for deployment metrics."""

import pytest

from repro.core.approx import appro_alg
from repro.core.assignment import optimal_assignment
from repro.sim.metrics import (
    deployment_throughput_bps,
    jain_fairness,
    summarize,
)
from repro.network.deployment import Deployment
from tests.conftest import make_line_instance


class TestJainFairness:
    def test_even_is_one(self):
        assert jain_fairness([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_all_on_one(self):
        assert jain_fairness([6.0, 0.0, 0.0]) == pytest.approx(1 / 3)

    def test_empty_and_zero(self):
        assert jain_fairness([]) == 1.0
        assert jain_fairness([0.0, 0.0]) == 1.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            jain_fairness([-1.0])

    def test_bounds(self):
        values = [1.0, 5.0, 2.0, 9.0]
        f = jain_fairness(values)
        assert 1 / len(values) <= f <= 1.0


class TestThroughput:
    def test_empty_deployment_zero(self):
        problem = make_line_instance()
        assert deployment_throughput_bps(problem, Deployment.empty()) == 0.0

    def test_sums_served_rates(self):
        problem = make_line_instance(num_locations=3, users_per_location=2,
                                     capacities=(2, 2, 2))
        dep = optimal_assignment(problem.graph, problem.fleet, {0: 0})
        expected = sum(
            problem.graph.rate_bps(u, 0, problem.fleet[0])
            for u in dep.users_of(0)
        )
        assert deployment_throughput_bps(problem, dep) == pytest.approx(expected)

    def test_more_users_more_throughput(self):
        problem = make_line_instance(num_locations=3, users_per_location=3,
                                     capacities=(3, 3, 3))
        one = optimal_assignment(problem.graph, problem.fleet, {0: 0})
        two = optimal_assignment(problem.graph, problem.fleet, {0: 0, 1: 1})
        assert deployment_throughput_bps(problem, two) > (
            deployment_throughput_bps(problem, one)
        )


class TestSummarize:
    def test_real_deployment(self, small_scenario):
        result = appro_alg(small_scenario, s=2, gain_mode="fast")
        metrics = summarize(small_scenario, result.deployment)
        assert metrics.served == result.served
        assert 0.0 < metrics.served_fraction <= 1.0
        assert metrics.throughput_bps > 0
        assert metrics.mean_rate_bps > 0
        assert 0.0 < metrics.capacity_utilisation <= 1.0
        assert 0.0 < metrics.load_fairness <= 1.0
        assert metrics.num_deployed == result.deployment.num_deployed

    def test_empty(self):
        problem = make_line_instance()
        metrics = summarize(problem, Deployment.empty())
        assert metrics.served == 0
        assert metrics.throughput_bps == 0.0
        assert metrics.mean_rate_bps == 0.0
        assert metrics.capacity_utilisation == 0.0
        assert metrics.num_deployed == 0
