"""Tests for the relocation planner."""


import pytest

from repro.network.deployment import Deployment
from repro.sim.relocation import naive_relocation, plan_relocation
from tests.conftest import make_line_instance


@pytest.fixture
def problem():
    # 6 locations on a line at x = 500..3000; capacities vary.
    return make_line_instance(
        num_locations=6, users_per_location=2,
        capacities=(4, 4, 2, 2, 4, 2),
    )


class TestPlanRelocation:
    def test_empty_new_deployment(self, problem):
        old = Deployment(placements={0: 0})
        plan = plan_relocation(problem, old, Deployment.empty())
        assert plan.moves == {} and plan.total_distance_m == 0.0

    def test_identity_when_unchanged(self, problem):
        dep = Deployment(placements={0: 0, 1: 1})
        plan = plan_relocation(problem, dep, dep)
        assert plan.num_moves == 0
        assert plan.total_distance_m == 0.0

    def test_swap_saves_crossing(self, problem):
        """UAVs 0 and 1 (equal capacity) planned to swap ends of the line:
        keeping roles would fly both across; the planner must swap them
        back into staying put."""
        old = Deployment(placements={0: 0, 1: 5})
        new = Deployment(placements={0: 5, 1: 0})  # same capacities
        naive = naive_relocation(problem, old, new)
        plan = plan_relocation(problem, old, new, policy="total")
        assert naive.total_distance_m == pytest.approx(2 * 2500.0)
        assert plan.total_distance_m == 0.0
        assert plan.num_moves == 0

    def test_capacity_constraint_respected(self, problem):
        """A small UAV may not take a position whose planned load exceeds
        its capacity."""
        old = Deployment(placements={2: 0, 0: 5})   # cap-2 at 0, cap-4 at 5
        # Position 0 planned for UAV 0 serving 4 users (its full capacity).
        new = Deployment(placements={0: 0},
                         assignment={0: 0, 1: 0, 12: 0, 13: 0})
        plan = plan_relocation(problem, old, new, policy="total")
        (k, (src, dst)), = plan.moves.items()
        assert problem.fleet[k].capacity >= 4
        assert dst == 0

    def test_unloaded_position_open_to_small_uav(self, problem):
        """With no planned load, the nearest UAV takes the position even if
        its capacity is smaller than the planned UAV's."""
        old = Deployment(placements={2: 1, 0: 5})   # cap-2 at loc 1
        new = Deployment(placements={0: 0}, assignment={})
        plan = plan_relocation(problem, old, new, policy="total")
        (k, (src, dst)), = plan.moves.items()
        assert k == 2  # the closer, smaller UAV
        assert dst == 0

    def test_makespan_beats_total_on_max(self, problem):
        old = Deployment(placements={0: 0, 1: 1, 4: 2})
        new = Deployment(placements={0: 3, 1: 4, 4: 5})
        total_plan = plan_relocation(problem, old, new, policy="total")
        makespan_plan = plan_relocation(problem, old, new, policy="makespan")
        assert makespan_plan.max_distance_m <= total_plan.max_distance_m + 1e-9
        assert total_plan.total_distance_m <= (
            makespan_plan.total_distance_m + 1e-9
        )

    def test_launch_from_staging(self, problem):
        """A UAV not previously deployed launches from the origin corner;
        its distance is positive."""
        old = Deployment.empty()
        new = Deployment(placements={0: 0})
        plan = plan_relocation(problem, old, new)
        (src, dst), = plan.moves.values()
        assert src is None and dst == 0
        assert plan.total_distance_m > 0

    def test_rejects_bad_policy(self, problem):
        with pytest.raises(ValueError, match="policy"):
            plan_relocation(problem, Deployment.empty(), Deployment.empty(),
                            policy="warp")

    def test_planned_positions_all_filled(self, problem):
        old = Deployment(placements={0: 0, 1: 1, 2: 2})
        new = Deployment(placements={0: 3, 2: 4})
        plan = plan_relocation(problem, old, new)
        destinations = sorted(dst for _, dst in plan.moves.values())
        assert destinations == [3, 4]


class TestNaiveRelocation:
    def test_keeps_roles(self, problem):
        old = Deployment(placements={0: 0, 1: 1})
        new = Deployment(placements={0: 1, 1: 0})
        plan = naive_relocation(problem, old, new)
        assert plan.moves[0] == (0, 1)
        assert plan.moves[1] == (1, 0)
        assert plan.num_moves == 2
