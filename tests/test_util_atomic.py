"""Atomic write protocol: all-or-nothing replacement, no tmp litter."""

from __future__ import annotations

import json

import pytest

from repro.util.atomic import atomic_write_json, atomic_write_text


def _no_tmp_litter(directory) -> None:
    leftovers = [p for p in directory.iterdir() if p.suffix == ".tmp"]
    assert leftovers == [], f"tmp files left behind: {leftovers}"


def test_write_text_creates_file(tmp_path):
    path = tmp_path / "out.txt"
    returned = atomic_write_text(path, "hello\n")
    assert returned == path
    assert path.read_text() == "hello\n"
    _no_tmp_litter(tmp_path)


def test_write_text_replaces_existing(tmp_path):
    path = tmp_path / "out.txt"
    path.write_text("old")
    atomic_write_text(path, "new")
    assert path.read_text() == "new"
    _no_tmp_litter(tmp_path)


def test_write_text_creates_parent_dirs(tmp_path):
    path = tmp_path / "a" / "b" / "out.txt"
    atomic_write_text(path, "deep")
    assert path.read_text() == "deep"


def test_write_json_round_trips_with_trailing_newline(tmp_path):
    path = tmp_path / "out.json"
    payload = {"b": [1, 2, 3], "a": {"nested": True}}
    atomic_write_json(path, payload)
    text = path.read_text()
    assert text.endswith("\n")
    assert json.loads(text) == payload
    _no_tmp_litter(tmp_path)


def test_failed_write_leaves_destination_intact(tmp_path):
    path = tmp_path / "out.json"
    atomic_write_json(path, {"version": 1})
    with pytest.raises(TypeError):
        atomic_write_json(path, {"bad": object()})
    assert json.loads(path.read_text()) == {"version": 1}
    _no_tmp_litter(tmp_path)


def test_fsync_false_still_writes(tmp_path):
    path = tmp_path / "out.txt"
    atomic_write_text(path, "fast", fsync=False)
    assert path.read_text() == "fast"
