"""Tests for failure injection: fault validation, schedule determinism,
event-queue integration, endurance-derived schedules."""

import pytest

from repro.network.deployment import Deployment
from repro.network.uav import UAV
from repro.ops.faults import BATTERY, CRASH, LINK, Fault, FaultSchedule
from repro.simnet.events import EventQueue


class TestFault:
    def test_crash_needs_uav(self):
        with pytest.raises(ValueError, match="uav_index"):
            Fault(time_s=1.0, kind=CRASH)

    def test_link_needs_pair(self):
        with pytest.raises(ValueError, match="pair"):
            Fault(time_s=1.0, kind=LINK)

    def test_link_endpoints_must_differ(self):
        with pytest.raises(ValueError, match="differ"):
            Fault(time_s=1.0, kind=LINK, link=(2, 2))

    def test_crash_must_not_carry_link(self):
        with pytest.raises(ValueError, match="must not carry"):
            Fault(time_s=1.0, kind=CRASH, uav_index=1, link=(0, 1))

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Fault(time_s=-0.1, kind=CRASH, uav_index=0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault(time_s=1.0, kind="gremlins", uav_index=0)

    def test_describe(self):
        assert "UAV 3 crashed" in Fault(
            time_s=1.0, kind=CRASH, uav_index=3
        ).describe()
        assert "battery" in Fault(
            time_s=1.0, kind=BATTERY, uav_index=0
        ).describe()
        assert "1<->4" in Fault(
            time_s=1.0, kind=LINK, link=(1, 4), duration_s=5.0
        ).describe()


class TestFaultSchedule:
    def test_sorted_by_time(self):
        schedule = FaultSchedule(faults=(
            Fault(time_s=9.0, kind=CRASH, uav_index=1),
            Fault(time_s=2.0, kind=CRASH, uav_index=0),
        ))
        assert [f.time_s for f in schedule] == [2.0, 9.0]

    def test_random_is_deterministic_by_seed(self):
        a = FaultSchedule.random(num_uavs=8, num_crashes=2, num_battery=1,
                                 num_links=2, seed=5)
        b = FaultSchedule.random(num_uavs=8, num_crashes=2, num_battery=1,
                                 num_links=2, seed=5)
        c = FaultSchedule.random(num_uavs=8, num_crashes=2, num_battery=1,
                                 num_links=2, seed=6)
        assert a.faults == b.faults
        assert a.faults != c.faults

    def test_random_victims_distinct(self):
        schedule = FaultSchedule.random(num_uavs=5, num_crashes=3,
                                        num_battery=2, seed=0)
        assert len(schedule.uavs_lost()) == 5

    def test_random_too_many_victims_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            FaultSchedule.random(num_uavs=3, num_crashes=2, num_battery=2)

    def test_random_times_within_window(self):
        schedule = FaultSchedule.random(num_uavs=6, num_crashes=3,
                                        window_s=(5.0, 7.0), seed=1)
        assert all(5.0 <= f.time_s <= 7.0 for f in schedule)

    def test_inject_schedules_faults_and_healings(self):
        schedule = FaultSchedule(faults=(
            Fault(time_s=1.0, kind=CRASH, uav_index=0),
            Fault(time_s=2.0, kind=LINK, link=(0, 1), duration_s=3.0),
        ))
        queue = EventQueue()
        schedule.inject(queue)
        assert len(queue) == 3
        times_kinds = []
        while queue:
            t, (kind, _) = queue.pop()
            times_kinds.append((t, kind))
        assert times_kinds == [
            (1.0, "fault"), (2.0, "fault"), (5.0, "link_restored"),
        ]

    def test_from_endurance(self):
        fleet = [UAV(capacity=10, battery_wh=200.0),
                 UAV(capacity=10, battery_wh=800.0)]
        deployment = Deployment(placements={0: 0, 1: 1})
        schedule = FaultSchedule.from_endurance(fleet, deployment)
        assert len(schedule) == 2
        assert all(f.kind == BATTERY for f in schedule)
        by_uav = {f.uav_index: f.time_s for f in schedule}
        # The bigger battery keeps its UAV up longer.
        assert by_uav[1] > by_uav[0]

    def test_from_endurance_horizon_clips(self):
        fleet = [UAV(capacity=10, battery_wh=200.0),
                 UAV(capacity=10, battery_wh=800.0)]
        deployment = Deployment(placements={0: 0, 1: 1})
        full = FaultSchedule.from_endurance(fleet, deployment)
        short = FaultSchedule.from_endurance(
            fleet, deployment, horizon_s=min(f.time_s for f in full) + 1.0
        )
        assert len(short) == 1
