"""Edge-case tests for battery-rotation scheduling (ISSUE satellite).

Covers the corners the main rotation suite skips: fleets with zero
spares, single-sortie missions, and pools whose endurance is shorter
than the recharge turnaround.
"""

import pytest

from repro.core.problem import ProblemInstance
from repro.geometry.point import Point3D
from repro.network.coverage import CoverageGraph
from repro.network.deployment import Deployment
from repro.network.energy import EnergyModel
from repro.network.uav import UAV
from repro.network.users import User
from repro.sim.rotation import max_sustainable_mission_s, plan_rotation


def make_problem(num_uavs, capacity=10, battery_wh=500.0):
    users = [User(Point3D(50.0 * i, 0.0, 0.0), 1e6) for i in range(4)]
    locations = [Point3D(100.0 * j, 0.0, 100.0) for j in range(4)]
    fleet = [
        UAV(capacity=capacity, battery_wh=battery_wh) for _ in range(num_uavs)
    ]
    graph = CoverageGraph(
        users=users, locations=locations, uav_range_m=500.0
    )
    return ProblemInstance(graph=graph, fleet=fleet)


def endurance_of(problem, k=0):
    return EnergyModel().endurance_s(problem.fleet[k])


class TestZeroSpares:
    def test_feasible_up_to_own_endurance(self):
        problem = make_problem(num_uavs=2)
        deployment = Deployment(placements={0: 0, 1: 1})
        endurance = endurance_of(problem)
        schedule = plan_rotation(
            problem, deployment, mission_s=endurance * 0.9, recharge_s=600.0
        )
        assert schedule.feasible
        assert schedule.swaps() == 0
        assert len(schedule.sorties) == 2

    def test_gap_opens_at_first_empty_battery(self):
        problem = make_problem(num_uavs=2)
        deployment = Deployment(placements={0: 0, 1: 1})
        endurance = endurance_of(problem)
        schedule = plan_rotation(
            problem, deployment, mission_s=endurance * 2, recharge_s=600.0
        )
        assert not schedule.feasible
        assert schedule.first_gap_s == pytest.approx(endurance)

    def test_zero_recharge_sustains_forever(self):
        """With instantaneous recharge the same UAV relaunches back-to-
        back, so even a spare-less fleet staffs any horizon."""
        problem = make_problem(num_uavs=1)
        deployment = Deployment(placements={0: 0})
        endurance = endurance_of(problem)
        schedule = plan_rotation(
            problem, deployment, mission_s=endurance * 3.5, recharge_s=0.0
        )
        assert schedule.feasible
        assert schedule.swaps() >= 3

    def test_max_sustainable_tracks_endurance(self):
        problem = make_problem(num_uavs=2)
        deployment = Deployment(placements={0: 0, 1: 1})
        endurance = endurance_of(problem)
        sustained = max_sustainable_mission_s(
            problem, deployment, recharge_s=600.0
        )
        # Bisection stops at one-minute resolution below the true boundary.
        assert endurance - 60.0 <= sustained <= endurance + 1e-6


class TestSingleSortie:
    def test_short_mission_one_sortie_per_position(self):
        problem = make_problem(num_uavs=4)
        deployment = Deployment(placements={0: 0, 1: 1, 2: 2})
        schedule = plan_rotation(
            problem, deployment, mission_s=60.0, recharge_s=3600.0
        )
        assert schedule.feasible
        assert schedule.swaps() == 0
        for position in (0, 1, 2):
            sorties = schedule.sorties_at(position)
            assert len(sorties) == 1
            assert sorties[0].start_s == 0.0
            assert sorties[0].end_s == 60.0

    def test_empty_deployment(self):
        problem = make_problem(num_uavs=2)
        deployment = Deployment(placements={})
        schedule = plan_rotation(problem, deployment, mission_s=100.0)
        assert schedule.feasible
        assert schedule.sorties == []
        assert max_sustainable_mission_s(
            problem, deployment, horizon_s=7200.0
        ) == 7200.0


class TestEnduranceBelowTurnaround:
    def test_recharge_longer_than_endurance_gaps_after_pool_drains(self):
        """One position, one spare, recharge far beyond endurance: the
        spare bridges one hand-off, then the pool is empty mid-recharge."""
        problem = make_problem(num_uavs=2)
        deployment = Deployment(placements={0: 0})
        endurance = endurance_of(problem)
        schedule = plan_rotation(
            problem, deployment, mission_s=endurance * 4,
            recharge_s=endurance * 10,
        )
        assert not schedule.feasible
        assert schedule.swaps() == 1
        assert schedule.first_gap_s == pytest.approx(2 * endurance)

    def test_many_spares_cover_recharge_deadtime(self):
        problem = make_problem(num_uavs=4)
        deployment = Deployment(placements={0: 0})
        endurance = endurance_of(problem)
        schedule = plan_rotation(
            problem, deployment, mission_s=endurance * 3.5,
            recharge_s=endurance * 10,
        )
        assert schedule.feasible
        assert schedule.swaps() == 3

    def test_near_zero_battery_unsustainable(self):
        problem = make_problem(num_uavs=2, battery_wh=0.01)
        deployment = Deployment(placements={0: 0})
        assert endurance_of(problem) < 1.0
        assert max_sustainable_mission_s(
            problem, deployment, recharge_s=3600.0
        ) == 0.0


class TestCompatibilityAndValidation:
    def test_low_capacity_spare_cannot_relieve_loaded_position(self):
        users = [User(Point3D(0.0, 0.0, 0.0), 1e6),
                 User(Point3D(10.0, 0.0, 0.0), 1e6)]
        locations = [Point3D(0.0, 0.0, 100.0), Point3D(400.0, 0.0, 100.0)]
        fleet = [UAV(capacity=2), UAV(capacity=1)]
        problem = ProblemInstance(
            graph=CoverageGraph(
                users=users, locations=locations, uav_range_m=500.0
            ),
            fleet=fleet,
        )
        deployment = Deployment(
            placements={0: 0}, assignment={0: 0, 1: 0}
        )
        endurance = endurance_of(problem)
        schedule = plan_rotation(
            problem, deployment, mission_s=endurance * 2, recharge_s=600.0
        )
        # The spare's capacity (1) is below the position's load (2).
        assert not schedule.feasible
        assert schedule.first_gap_s == pytest.approx(endurance)

    def test_rejects_non_positive_mission(self):
        problem = make_problem(num_uavs=1)
        with pytest.raises(ValueError, match="positive"):
            plan_rotation(problem, Deployment(placements={0: 0}), 0.0)

    def test_rejects_negative_recharge(self):
        problem = make_problem(num_uavs=1)
        with pytest.raises(ValueError, match="non-negative"):
            plan_rotation(
                problem, Deployment(placements={0: 0}), 100.0,
                recharge_s=-1.0,
            )
