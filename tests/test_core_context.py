"""SolverContext: the precomputed arrays must agree exactly with the
graph's scalar lookups, survive pickling, warm worker caches faithfully,
and the vectorized subset operations must match their scalar references."""

from __future__ import annotations

import pickle
from itertools import combinations

import numpy as np
import pytest

from repro.core.approx import _prunable, appro_alg
from repro.core.context import SolverContext, prunable_mask, subset_bounds
from repro.graphs.bfs import bfs_hops
from repro.network.coverage import CoverageGraph
from repro.workload.scenarios import paper_scenario
from tests.conftest import make_line_instance


@pytest.fixture(scope="module")
def problem():
    return paper_scenario(num_users=150, num_uavs=5, scale="small", seed=11)


@pytest.fixture(scope="module")
def context(problem):
    return SolverContext.from_problem(problem)


def test_hop_matrix_matches_bfs(problem, context):
    graph = problem.graph
    for v in range(problem.num_locations):
        assert context.hop_matrix[v].tolist() == bfs_hops(
            graph.location_graph, v
        )


def test_hops_to_set_matches_graph(problem, context):
    graph = problem.graph
    for sources in ([0], [1, 4], list(range(problem.num_locations))):
        assert context.hops_to_set(sources) == graph.hops_to_set(sources)


def test_coverage_counts_match_cover_lists(problem, context):
    graph = problem.graph
    for k, uav in enumerate(problem.fleet):
        for v in range(problem.num_locations):
            users = graph.coverable_users(v, uav)
            assert context.coverage_count(v, k) == len(users)
            assert context.coverable_users(v, k) == users


def test_union_counts_match_set_unions(problem, context):
    graph = problem.graph
    for k, uav in enumerate(problem.fleet):
        for subset in combinations(range(problem.num_locations), 3):
            expected = set()
            for v in subset:
                expected.update(graph.coverable_users(v, uav))
            assert context.union_coverage_count(list(subset), k) == len(
                expected
            )


def test_best_counts_is_max_over_radios(problem, context):
    for v in range(problem.num_locations):
        best = max(
            len(problem.graph.coverable_users(v, uav))
            for uav in problem.fleet
        )
        assert int(context.best_counts[v]) == best


def test_pickle_roundtrip(context):
    clone = pickle.loads(pickle.dumps(context))
    assert np.array_equal(clone.hop_matrix, context.hop_matrix)
    assert np.array_equal(clone.coverage_bits, context.coverage_bits)
    assert clone.radio_keys == context.radio_keys
    assert clone.capacities == context.capacities
    assert clone.num_users == context.num_users


def test_install_into_warms_cold_graph(problem, context):
    graph = problem.graph
    cold = CoverageGraph(
        users=graph.users,
        locations=graph.locations,
        uav_range_m=graph.uav_range_m,
        channel=graph.channel,
    )
    context.install_into(cold)
    for v in range(problem.num_locations):
        assert cold.hops_from(v) == graph.hops_from(v)
        for uav in problem.fleet:
            assert cold.coverable_users(v, uav) == graph.coverable_users(
                v, uav
            )


def test_matches_rejects_other_shapes(problem, context):
    assert context.matches(problem)
    other = paper_scenario(num_users=90, num_uavs=4, scale="small", seed=2)
    assert not context.matches(other)
    with pytest.raises(ValueError, match="context"):
        appro_alg(other, s=2, context=context)


@pytest.mark.parametrize("s", [1, 2, 3])
def test_prunable_mask_matches_scalar_reference(problem, context, s):
    subsets = np.array(
        list(combinations(range(problem.num_locations), s)), dtype=np.int32
    )
    mask = prunable_mask(context, subsets, problem.num_uavs)
    for row, flag in zip(subsets, mask):
        assert bool(flag) == _prunable(problem, tuple(int(v) for v in row))


@pytest.mark.parametrize("seed", [1, 5, 9])
def test_bounds_are_admissible(seed):
    """For every evaluated (non-pruned) subset the bound must dominate the
    served count actually achieved — the losslessness precondition."""
    problem = paper_scenario(
        num_users=120, num_uavs=4, scale="small", seed=seed
    )
    context = SolverContext.from_problem(problem)
    subsets = np.array(
        list(combinations(range(problem.num_locations), 2)), dtype=np.int32
    )
    bounds = subset_bounds(context, subsets, problem.num_uavs)
    best = appro_alg(problem, s=2).served
    mask = prunable_mask(context, subsets, problem.num_uavs)
    # The overall best is achieved by some surviving subset, so the max
    # surviving bound must be at least the best served count.
    assert bounds[~mask].max() >= best
    for row, bound in zip(subsets, bounds):
        anchors = [int(v) for v in row]
        if _prunable(problem, tuple(anchors)):
            continue
        result = appro_alg(problem, s=2, anchor_candidates=anchors)
        assert bound >= result.served, (
            f"bound {bound} below achievable {result.served} for {anchors}"
        )


def test_bounds_prune_far_anchor_pairs():
    """On a line with all users at one end, anchor pairs at the empty end
    must get bounds strictly below what the loaded end achieves."""
    p = make_line_instance(
        num_locations=10,
        users_per_location=[30, 30, 20, 0, 0, 0, 0, 0, 0, 2],
        capacities=[25, 20, 15, 10],
    )
    context = SolverContext.from_problem(p)
    subsets = np.array([[0, 1], [8, 9]], dtype=np.int32)
    bounds = subset_bounds(context, subsets, p.num_uavs)
    assert bounds[0] > bounds[1]
