"""The progress ledger: fingerprinted, atomic, resume-safe."""

from __future__ import annotations

import json

import pytest

from repro.util.ledger import (
    LedgerError,
    ProgressLedger,
    work_fingerprint,
)


def test_fingerprint_is_deterministic_and_order_insensitive():
    a = work_fingerprint({"x": 1, "y": [2, 3]})
    b = work_fingerprint({"y": [2, 3], "x": 1})
    assert a == b
    assert a != work_fingerprint({"x": 1, "y": [2, 4]})
    assert len(a) == 16


def test_mark_and_reload(tmp_path):
    path = tmp_path / "ledger.json"
    ledger = ProgressLedger(path, {"job": "demo"})
    assert len(ledger) == 0
    ledger.mark("a", {"served": 10})
    ledger.mark("b", None)

    reloaded = ProgressLedger(path, {"job": "demo"}, resume=True)
    assert len(reloaded) == 2
    assert "a" in reloaded
    assert "c" not in reloaded
    assert reloaded.payload("a") == {"served": 10}
    assert not reloaded.stale


def test_different_description_is_stale_and_restarts(tmp_path):
    path = tmp_path / "ledger.json"
    ProgressLedger(path, {"job": "demo"}).mark("a", 1)
    other = ProgressLedger(path, {"job": "different"}, resume=True)
    assert other.stale
    assert len(other) == 0, "a stale ledger must never resume entries"


def test_without_resume_existing_entries_are_ignored(tmp_path):
    path = tmp_path / "ledger.json"
    ProgressLedger(path, {"job": "demo"}).mark("a", 1)
    fresh = ProgressLedger(path, {"job": "demo"}, resume=False)
    assert len(fresh) == 0


def test_deferred_flush(tmp_path):
    path = tmp_path / "ledger.json"
    ledger = ProgressLedger(path, {"job": "demo"})
    ledger.mark("a", 1, flush=False)
    assert not path.exists() or "a" not in json.loads(
        path.read_text()
    ).get("done", {})
    ledger.flush()
    assert "a" in json.loads(path.read_text())["done"]


def test_foreign_file_raises(tmp_path):
    path = tmp_path / "ledger.json"
    path.write_text(json.dumps({"kind": "not-a-ledger"}))
    with pytest.raises(LedgerError):
        ProgressLedger(path, {"job": "demo"}, resume=True)
