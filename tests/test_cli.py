"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_demo_runs(self, capsys):
        assert main(["demo", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "approAlg" in out
        assert "UAV" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure8"])

    def test_fig4_smoke(self, capsys, monkeypatch):
        """Run fig4 on a stub sweep so the CLI path is covered quickly."""
        import repro.cli as cli
        from repro.sim.results import RunRecord, SweepResult

        def stub_sweep(**kwargs):
            sweep = SweepResult(name="fig4", sweep_param="K")
            sweep.add(2, RunRecord("approAlg", 42, 0.1, 100, 2))
            return sweep

        monkeypatch.setattr(cli, "fig4_sweep", stub_sweep)
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out and "42" in out

    def test_fig4_chart_flag(self, capsys, monkeypatch):
        import repro.cli as cli
        from repro.sim.results import RunRecord, SweepResult

        def stub_sweep(**kwargs):
            sweep = SweepResult(name="fig4", sweep_param="K")
            sweep.add(2, RunRecord("approAlg", 10, 0.1, 100, 2))
            sweep.add(4, RunRecord("approAlg", 30, 0.1, 100, 4))
            return sweep

        monkeypatch.setattr(cli, "fig4_sweep", stub_sweep)
        assert main(["fig4", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "[chart]" in out
        assert "o=approAlg" in out

    def test_fig6b_prints_runtime(self, capsys, monkeypatch):
        import repro.cli as cli
        from repro.sim.results import RunRecord, SweepResult

        def stub_sweep(**kwargs):
            sweep = SweepResult(name="fig6", sweep_param="s")
            sweep.add(1, RunRecord("approAlg", 10, 0.25, 100, 4))
            return sweep

        monkeypatch.setattr(cli, "fig6_sweep", stub_sweep)
        assert main(["fig6b"]) == 0
        out = capsys.readouterr().out
        assert "running time" in out and "0.25" in out

    def test_anchor_pool_zero_means_unrestricted(self, monkeypatch):
        import repro.cli as cli

        captured = {}

        def stub_sweep(**kwargs):
            captured.update(kwargs)
            from repro.sim.results import SweepResult
            return SweepResult(name="fig5", sweep_param="n")

        monkeypatch.setattr(cli, "fig5_sweep", stub_sweep)
        assert main(["fig5", "--anchor-pool", "0"]) == 0
        assert captured["max_anchor_candidates"] is None

    def test_ratio_table(self, capsys):
        assert main(["ratio", "--k", "10", "20", "--s", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "guarantee" in out
        assert "20" in out

    def test_ratio_skips_s_above_k(self, capsys):
        assert main(["ratio", "--k", "2", "--s", "3"]) == 0
        out = capsys.readouterr().out
        # No data row for s > K.
        assert len(out.strip().splitlines()) == 3

    def test_map_runs(self, capsys):
        assert main([
            "map", "--users", "60", "--uavs", "3",
            "--scale", "small", "--cols", "20", "--seed", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "legend" in out
        assert "served" in out

    def test_selfcheck(self, capsys):
        assert main(["selfcheck"]) == 0
        out = capsys.readouterr().out
        assert "all good" in out
        assert "[ok]" in out and "FAIL" not in out

    def test_run_and_save(self, capsys, tmp_path):
        out_file = tmp_path / "dep.json"
        assert main([
            "run", "--users", "80", "--uavs", "3", "--scale", "small",
            "--seed", "4", "--save", str(out_file),
        ]) == 0
        out = capsys.readouterr().out
        assert "approAlg: served" in out
        assert out_file.exists()
        from repro.sim.io import load_deployment
        dep = load_deployment(out_file)
        assert dep.num_deployed >= 1

    def test_run_with_report(self, capsys):
        assert main([
            "run", "--users", "60", "--uavs", "3", "--scale", "small",
            "--seed", "2", "--report",
        ]) == 0
        out = capsys.readouterr().out
        assert "== coverage ==" in out
        assert "== spectrum ==" in out

    def test_run_from_scenario_file(self, capsys, tmp_path):
        from repro.sim.io import save_scenario
        from repro.workload.scenarios import SCALES

        scenario_file = tmp_path / "scenario.json"
        config = SCALES["small"].with_overrides(num_users=50, num_uavs=3)
        save_scenario(scenario_file, config, seed=1)
        assert main([
            "run", "--scenario", str(scenario_file),
            "--algorithm", "MCS",
        ]) == 0
        out = capsys.readouterr().out
        assert "MCS: served" in out

    def test_mission_smoke(self, capsys):
        assert main([
            "mission", "--users", "80", "--uavs", "4", "--scale", "small",
            "--seed", "3", "--duration", "60", "--crashes", "1",
            "--no-map",
        ]) == 0
        out = capsys.readouterr().out
        assert "== mission ==" in out
        assert "== mission log ==" in out
        assert "fault" in out
        assert "mission_end" in out

    def test_run_with_trace_and_metrics(self, capsys, tmp_path):
        from repro import obs

        trace = tmp_path / "out.jsonl"
        metrics = tmp_path / "metrics.json"
        assert main([
            "run", "--users", "60", "--uavs", "3", "--scale", "small",
            "--seed", "4", "--trace", str(trace),
            "--metrics-out", str(metrics),
        ]) == 0
        out = capsys.readouterr().out
        assert "trace (" in out and "metrics written" in out
        assert not obs.is_enabled(), "the CLI must switch tracing back off"

        data = obs.read_trace(trace)
        assert data.manifest.command == "run"
        assert data.manifest.seed == 4
        assert data.manifest.stats["exit_code"] == 0
        names = {s["name"] for s in data.spans}
        assert "runner.solve" in names and "approx.enumerate" in names
        assert data.metrics["counters"]["approx.runs"] >= 1

        import json
        saved = json.loads(metrics.read_text())
        assert saved["counters"]["runner.solves"] == 1

    def test_trace_report_renders_trace(self, capsys, tmp_path):
        trace = tmp_path / "out.jsonl"
        chrome = tmp_path / "chrome.json"
        assert main([
            "run", "--users", "60", "--uavs", "3", "--scale", "small",
            "--seed", "4", "--trace", str(trace),
        ]) == 0
        capsys.readouterr()
        assert main([
            "trace-report", str(trace), "--chrome", str(chrome),
        ]) == 0
        out = capsys.readouterr().out
        assert "runner.solve" in out and "counters" in out
        import json
        events = json.loads(chrome.read_text())["traceEvents"]
        assert events and all(e["ph"] == "X" for e in events)

    def test_trace_report_missing_file_fails_cleanly(self, capsys, tmp_path):
        assert main(["trace-report", str(tmp_path / "nope.jsonl")]) == 2
        assert "no trace file" in capsys.readouterr().err

    def test_mission_trace_records_mission_spans(self, capsys, tmp_path):
        from repro import obs

        trace = tmp_path / "mission.jsonl"
        assert main([
            "mission", "--users", "80", "--uavs", "4", "--scale", "small",
            "--seed", "3", "--duration", "60", "--crashes", "1",
            "--no-map", "--trace", str(trace),
        ]) == 0
        data = obs.read_trace(trace)
        names = {s["name"] for s in data.spans}
        assert "mission.run" in names and "mission.plan" in names
        assert data.metrics["counters"]["mission.faults"] == 1

    def test_trace_report_notes_zero_span_trace(self, capsys, tmp_path):
        """A trace with a manifest and metrics but no spans must say so
        and still render the counters (regression: the span table used to
        vanish silently)."""
        from repro import obs

        trace = tmp_path / "empty_spans.jsonl"
        manifest = obs.RunManifest(command="run", seed=1, wall_s=0.5)
        obs.write_trace(
            trace, manifest, spans=[],
            metrics={"counters": {"runner.solves": 1}, "gauges": {},
                     "histograms": {}},
        )
        assert main(["trace-report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "no spans recorded" in out
        assert "runner.solves" in out

    def test_metrics_format_openmetrics(self, capsys, tmp_path):
        metrics = tmp_path / "metrics.prom"
        assert main([
            "run", "--users", "60", "--uavs", "3", "--scale", "small",
            "--seed", "4", "--metrics-out", str(metrics),
            "--metrics-format", "openmetrics",
        ]) == 0
        text = metrics.read_text()
        assert text.endswith("# EOF\n")
        assert "repro_run_info{" in text and 'command="run"' in text
        assert "runner_solves_total 1" in text

    def test_live_flag_prints_heartbeat(self, capsys):
        from repro import obs

        assert main([
            "run", "--users", "60", "--uavs", "3", "--scale", "small",
            "--seed", "4", "--live", "--live-interval", "0.05",
        ]) == 0
        err = capsys.readouterr().err
        assert "[live]" in err
        assert not obs.is_enabled(), "the CLI must switch tracing back off"

    def test_fig4_live_smoke(self, capsys, monkeypatch):
        """`repro fig4 --live` goes through the observed path and emits
        at least the closing heartbeat line."""
        import repro.cli as cli
        from repro.sim.results import RunRecord, SweepResult

        def stub_sweep(**kwargs):
            sweep = SweepResult(name="fig4", sweep_param="K")
            sweep.add(2, RunRecord("approAlg", 42, 0.1, 100, 2))
            return sweep

        monkeypatch.setattr(cli, "fig4_sweep", stub_sweep)
        assert main(["fig4", "--scale", "small", "--live"]) == 0
        captured = capsys.readouterr()
        assert "Fig. 4" in captured.out
        assert "[live]" in captured.err

    def test_perf_diff_clean_and_regressed(self, capsys, tmp_path):
        import json

        point = {"scenario": "engine", "algorithm": "approAlg",
                 "workers": 1, "scale": "bench", "wall_s": 1.0}
        baseline = tmp_path / "base.json"
        current = tmp_path / "cur.json"
        baseline.write_text(json.dumps({"points": [point]}))
        current.write_text(json.dumps({"points": [dict(point, wall_s=1.1)]}))
        assert main(["perf-diff", str(baseline), str(current)]) == 0
        assert "no regression" in capsys.readouterr().out

        current.write_text(json.dumps({"points": [dict(point, wall_s=2.0)]}))
        assert main(["perf-diff", str(baseline), str(current)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_perf_diff_json_output(self, capsys, tmp_path):
        import json

        point = {"scenario": "engine", "algorithm": "approAlg",
                 "workers": 1, "scale": "bench", "wall_s": 1.0}
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps({"points": [point]}))
        assert main([
            "perf-diff", str(baseline), str(baseline),
            "--threshold", "0.3", "--json",
        ]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["regression"] is False
        assert data["threshold"] == 0.3
        assert data["entries"][0]["status"] == "unchanged"

    def test_perf_diff_missing_file_exits_two(self, capsys, tmp_path):
        assert main([
            "perf-diff", str(tmp_path / "a.json"), str(tmp_path / "b.json"),
        ]) == 2
        assert "error:" in capsys.readouterr().err

    def test_perf_diff_garbage_file_exits_two(self, capsys, tmp_path):
        bad = tmp_path / "bad.txt"
        bad.write_text("not {{{ json\n")
        assert main(["perf-diff", str(bad), str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_seed_forwarded(self, monkeypatch):
        import repro.cli as cli

        captured = {}

        def stub_sweep(**kwargs):
            captured.update(kwargs)
            from repro.sim.results import SweepResult
            return SweepResult(name="fig4", sweep_param="K")

        monkeypatch.setattr(cli, "fig4_sweep", stub_sweep)
        assert main(["fig4", "--seed", "123"]) == 0
        assert captured["seed"] == 123


class TestScenarioCommands:
    """The spec-driven commands: scenario list/show, run --scenario on a
    spec file, and batch."""

    def _spec(self, **overrides):
        from repro.scenario.spec import ScenarioSpec

        base = dict(
            name="cli-spec", scale="small", num_users=60, num_uavs=3,
            seed=4, algorithm="approAlg",
            algorithm_params={"s": 2, "gain_mode": "fast"},
        )
        base.update(overrides)
        return ScenarioSpec(**base)

    def test_scenario_list(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        assert "demo-small" in out
        assert "paper-headline" in out

    def test_scenario_show_round_trips(self, capsys):
        from repro.scenario.spec import ScenarioSpec, get_preset

        assert main(["scenario", "show", "demo-small"]) == 0
        out = capsys.readouterr().out
        assert ScenarioSpec.from_json(out) == get_preset("demo-small")

    def test_scenario_show_unknown_exits_two(self, capsys):
        assert main(["scenario", "show", "galactic"]) == 2
        err = capsys.readouterr().err
        assert "demo-small" in err        # lists the known presets

    def test_scenario_show_requires_preset(self, capsys):
        assert main(["scenario", "show"]) == 2

    def test_run_from_spec_file(self, capsys, tmp_path):
        path = tmp_path / "spec.json"
        self._spec(algorithm="MCS", algorithm_params={}).save(path)
        assert main(["run", "--scenario", str(path)]) == 0
        out = capsys.readouterr().out
        # Algorithm comes from the spec, not the CLI default.
        assert "MCS: served" in out

    def test_run_from_spec_file_matches_flags(self, capsys, tmp_path):
        """A saved spec reproduces the same run as the equivalent flags."""
        path = tmp_path / "spec.json"
        self._spec().save(path)
        assert main(["run", "--scenario", str(path)]) == 0
        via_spec = capsys.readouterr().out
        assert main([
            "run", "--users", "60", "--uavs", "3", "--scale", "small",
            "--seed", "4", "--s", "2", "--anchor-pool", "0",
        ]) == 0
        via_flags = capsys.readouterr().out
        assert via_spec.splitlines()[0].rsplit(" in ", 1)[0] == \
            via_flags.splitlines()[0].rsplit(" in ", 1)[0]

    def test_batch_runs_spec_files(self, capsys, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        self._spec(name="batch-a").save(a)
        self._spec(name="batch-b", algorithm="MCS",
                   algorithm_params={}).save(b)
        assert main(["batch", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "2 specs" in out
        assert "batch-a" in out and "batch-b" in out

    def test_batch_missing_file_exits_two(self, capsys, tmp_path):
        assert main(["batch", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_batch_reports_spec_failure(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        self._spec(name="batch-bad",
                   algorithm_params={"bogus": True}).save(bad)
        assert main(["batch", str(bad)]) == 1
        assert "batch-bad" in capsys.readouterr().err


class TestFlightRecorderCli:
    """CLI surface of the flight recorder: --timeline/--archive on
    observed commands, `repro profile`, and `repro runs`."""

    def test_run_timeline_flag_writes_jsonl(self, capsys, tmp_path):
        from repro.obs.timeline import read_timeline

        timeline = tmp_path / "tl.jsonl"
        assert main([
            "run", "--users", "60", "--uavs", "3", "--scale", "small",
            "--seed", "4", "--timeline", str(timeline),
        ]) == 0
        assert "timeline (" in capsys.readouterr().out
        meta, snapshots = read_timeline(timeline)
        assert meta["schema"] == 1 and snapshots
        # The closing snapshot carries the run's final counters.
        assert snapshots[-1]["counters"]["runner.solves"] == 1

    def test_trace_embeds_timeline_and_report_renders_it(
        self, capsys, tmp_path
    ):
        trace = tmp_path / "trace.jsonl"
        timeline = tmp_path / "tl.jsonl"
        assert main([
            "run", "--users", "60", "--uavs", "3", "--scale", "small",
            "--seed", "4", "--trace", str(trace),
            "--timeline", str(timeline),
        ]) == 0
        capsys.readouterr()
        assert main(["trace-report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "timeline (" in out and "snapshots over" in out

    def test_run_archive_then_runs_list_show_compare(
        self, capsys, tmp_path
    ):
        root = str(tmp_path / "runs")
        args = ["run", "--users", "60", "--uavs", "3", "--scale", "small",
                "--seed", "4", "--archive", "--archive-root", root]
        assert main(args) == 0
        assert "run archived as run-0001" in capsys.readouterr().out
        assert main(args) == 0
        capsys.readouterr()

        assert main(["runs", "list", "--root", root]) == 0
        out = capsys.readouterr().out
        assert "run-0001" in out and "run-0002" in out
        assert "small,60,3" in out  # scenario_key made it into the index

        assert main(["runs", "show", "run-0001", "--root", root]) == 0
        out = capsys.readouterr().out
        assert "pipeline.solve" in out and "scenario" in out

        assert main([
            "runs", "compare", "run-0001", "run-0002", "--root", root,
        ]) in (0, 1)  # same workload; tiny timing jitter may cross 15%
        assert "runs compare run-0001 -> run-0002" in capsys.readouterr().out

    def test_profile_command_smoke(self, capsys, tmp_path):
        import json

        from repro import obs

        out_path = tmp_path / "p.speedscope.json"
        collapsed = tmp_path / "p.collapsed"
        root = str(tmp_path / "runs")
        assert main([
            "profile", "demo-small", "--hz", "200", "--out", str(out_path),
            "--collapsed", str(collapsed), "--archive",
            "--archive-root", root,
        ]) == 0
        out = capsys.readouterr().out
        assert "profiler:" in out and "samples" in out
        assert "approAlg" in out
        assert "run archived as run-0001" in out
        doc = json.loads(out_path.read_text())
        assert doc["profiles"][0]["type"] == "sampled"
        assert collapsed.exists()
        assert not obs.is_enabled(), "profile must switch tracing back off"

        # The archived profile renders in `runs show`.
        assert main(["runs", "show", "run-0001", "--root", root]) == 0
        assert "profile (" in capsys.readouterr().out

    def test_profile_unknown_scenario_exits_two(self, capsys):
        assert main(["profile", "no-such-preset"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_profile_rejects_non_spec_file(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"kind": "other"}')
        assert main(["profile", str(bad)]) == 2
        assert "scenario-spec" in capsys.readouterr().err
