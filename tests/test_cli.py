"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_demo_runs(self, capsys):
        assert main(["demo", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "approAlg" in out
        assert "UAV" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure8"])

    def test_fig4_smoke(self, capsys, monkeypatch):
        """Run fig4 on a stub sweep so the CLI path is covered quickly."""
        import repro.cli as cli
        from repro.sim.results import RunRecord, SweepResult

        def stub_sweep(**kwargs):
            sweep = SweepResult(name="fig4", sweep_param="K")
            sweep.add(2, RunRecord("approAlg", 42, 0.1, 100, 2))
            return sweep

        monkeypatch.setattr(cli, "fig4_sweep", stub_sweep)
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out and "42" in out

    def test_fig4_chart_flag(self, capsys, monkeypatch):
        import repro.cli as cli
        from repro.sim.results import RunRecord, SweepResult

        def stub_sweep(**kwargs):
            sweep = SweepResult(name="fig4", sweep_param="K")
            sweep.add(2, RunRecord("approAlg", 10, 0.1, 100, 2))
            sweep.add(4, RunRecord("approAlg", 30, 0.1, 100, 4))
            return sweep

        monkeypatch.setattr(cli, "fig4_sweep", stub_sweep)
        assert main(["fig4", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "[chart]" in out
        assert "o=approAlg" in out

    def test_fig6b_prints_runtime(self, capsys, monkeypatch):
        import repro.cli as cli
        from repro.sim.results import RunRecord, SweepResult

        def stub_sweep(**kwargs):
            sweep = SweepResult(name="fig6", sweep_param="s")
            sweep.add(1, RunRecord("approAlg", 10, 0.25, 100, 4))
            return sweep

        monkeypatch.setattr(cli, "fig6_sweep", stub_sweep)
        assert main(["fig6b"]) == 0
        out = capsys.readouterr().out
        assert "running time" in out and "0.25" in out

    def test_anchor_pool_zero_means_unrestricted(self, monkeypatch):
        import repro.cli as cli

        captured = {}

        def stub_sweep(**kwargs):
            captured.update(kwargs)
            from repro.sim.results import SweepResult
            return SweepResult(name="fig5", sweep_param="n")

        monkeypatch.setattr(cli, "fig5_sweep", stub_sweep)
        assert main(["fig5", "--anchor-pool", "0"]) == 0
        assert captured["max_anchor_candidates"] is None

    def test_ratio_table(self, capsys):
        assert main(["ratio", "--k", "10", "20", "--s", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "guarantee" in out
        assert "20" in out

    def test_ratio_skips_s_above_k(self, capsys):
        assert main(["ratio", "--k", "2", "--s", "3"]) == 0
        out = capsys.readouterr().out
        # No data row for s > K.
        assert len(out.strip().splitlines()) == 3

    def test_map_runs(self, capsys):
        assert main([
            "map", "--users", "60", "--uavs", "3",
            "--scale", "small", "--cols", "20", "--seed", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "legend" in out
        assert "served" in out

    def test_selfcheck(self, capsys):
        assert main(["selfcheck"]) == 0
        out = capsys.readouterr().out
        assert "all good" in out
        assert "[ok]" in out and "FAIL" not in out

    def test_run_and_save(self, capsys, tmp_path):
        out_file = tmp_path / "dep.json"
        assert main([
            "run", "--users", "80", "--uavs", "3", "--scale", "small",
            "--seed", "4", "--save", str(out_file),
        ]) == 0
        out = capsys.readouterr().out
        assert "approAlg: served" in out
        assert out_file.exists()
        from repro.sim.io import load_deployment
        dep = load_deployment(out_file)
        assert dep.num_deployed >= 1

    def test_run_with_report(self, capsys):
        assert main([
            "run", "--users", "60", "--uavs", "3", "--scale", "small",
            "--seed", "2", "--report",
        ]) == 0
        out = capsys.readouterr().out
        assert "== coverage ==" in out
        assert "== spectrum ==" in out

    def test_run_from_scenario_file(self, capsys, tmp_path):
        from repro.sim.io import save_scenario
        from repro.workload.scenarios import SCALES

        scenario_file = tmp_path / "scenario.json"
        config = SCALES["small"].with_overrides(num_users=50, num_uavs=3)
        save_scenario(scenario_file, config, seed=1)
        assert main([
            "run", "--scenario", str(scenario_file),
            "--algorithm", "MCS",
        ]) == 0
        out = capsys.readouterr().out
        assert "MCS: served" in out

    def test_mission_smoke(self, capsys):
        assert main([
            "mission", "--users", "80", "--uavs", "4", "--scale", "small",
            "--seed", "3", "--duration", "60", "--crashes", "1",
            "--no-map",
        ]) == 0
        out = capsys.readouterr().out
        assert "== mission ==" in out
        assert "== mission log ==" in out
        assert "fault" in out
        assert "mission_end" in out

    def test_run_with_trace_and_metrics(self, capsys, tmp_path):
        from repro import obs

        trace = tmp_path / "out.jsonl"
        metrics = tmp_path / "metrics.json"
        assert main([
            "run", "--users", "60", "--uavs", "3", "--scale", "small",
            "--seed", "4", "--trace", str(trace),
            "--metrics-out", str(metrics),
        ]) == 0
        out = capsys.readouterr().out
        assert "trace (" in out and "metrics written" in out
        assert not obs.is_enabled(), "the CLI must switch tracing back off"

        data = obs.read_trace(trace)
        assert data.manifest.command == "run"
        assert data.manifest.seed == 4
        assert data.manifest.stats["exit_code"] == 0
        names = {s["name"] for s in data.spans}
        assert "runner.solve" in names and "approx.enumerate" in names
        assert data.metrics["counters"]["approx.runs"] >= 1

        import json
        saved = json.loads(metrics.read_text())
        assert saved["counters"]["runner.solves"] == 1

    def test_trace_report_renders_trace(self, capsys, tmp_path):
        trace = tmp_path / "out.jsonl"
        chrome = tmp_path / "chrome.json"
        assert main([
            "run", "--users", "60", "--uavs", "3", "--scale", "small",
            "--seed", "4", "--trace", str(trace),
        ]) == 0
        capsys.readouterr()
        assert main([
            "trace-report", str(trace), "--chrome", str(chrome),
        ]) == 0
        out = capsys.readouterr().out
        assert "runner.solve" in out and "counters" in out
        import json
        events = json.loads(chrome.read_text())["traceEvents"]
        assert events and all(e["ph"] == "X" for e in events)

    def test_trace_report_missing_file_fails_cleanly(self, capsys, tmp_path):
        assert main(["trace-report", str(tmp_path / "nope.jsonl")]) == 2
        assert "no trace file" in capsys.readouterr().err

    def test_mission_trace_records_mission_spans(self, capsys, tmp_path):
        from repro import obs

        trace = tmp_path / "mission.jsonl"
        assert main([
            "mission", "--users", "80", "--uavs", "4", "--scale", "small",
            "--seed", "3", "--duration", "60", "--crashes", "1",
            "--no-map", "--trace", str(trace),
        ]) == 0
        data = obs.read_trace(trace)
        names = {s["name"] for s in data.spans}
        assert "mission.run" in names and "mission.plan" in names
        assert data.metrics["counters"]["mission.faults"] == 1

    def test_seed_forwarded(self, monkeypatch):
        import repro.cli as cli

        captured = {}

        def stub_sweep(**kwargs):
            captured.update(kwargs)
            from repro.sim.results import SweepResult
            return SweepResult(name="fig4", sweep_param="K")

        monkeypatch.setattr(cli, "fig4_sweep", stub_sweep)
        assert main(["fig4", "--seed", "123"]) == 0
        assert captured["seed"] == 123
