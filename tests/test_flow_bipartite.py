"""Tests for the incremental assignment engine, cross-checked against an
independent max-flow solution of the same bipartite instance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flow.bipartite import IncrementalAssignment
from repro.flow.dinic import Dinic


def dinic_value(num_users: int, stations: list) -> int:
    """Optimal assignment value via Dinic: stations = [(covers, cap)]."""
    source = 0
    sink = num_users + len(stations) + 1
    d = Dinic(sink + 1)
    for u in range(num_users):
        d.add_edge(source, 1 + u, 1)
    for st_idx, (covers, cap) in enumerate(stations):
        node = num_users + 1 + st_idx
        for u in covers:
            d.add_edge(1 + u, node, 1)
        d.add_edge(node, sink, cap)
    return d.max_flow(source, sink)


def random_instance(seed: int, num_users: int, num_stations: int):
    rng = np.random.default_rng(seed)
    stations = []
    for _ in range(num_stations):
        size = int(rng.integers(0, num_users + 1))
        covers = list(
            rng.choice(num_users, size=size, replace=False)
        ) if size else []
        cap = int(rng.integers(0, num_users + 2))
        stations.append(([int(u) for u in covers], cap))
    return stations


class TestBasics:
    def test_empty_engine(self):
        eng = IncrementalAssignment(5)
        assert eng.served_count == 0
        assert eng.assignment() == {}

    def test_open_simple(self):
        eng = IncrementalAssignment(4)
        gain = eng.open("a", [0, 1, 2], capacity=2)
        assert gain == 2
        assert eng.served_count == 2
        assert eng.load_of("a") == 2

    def test_capacity_zero(self):
        eng = IncrementalAssignment(3)
        assert eng.open("a", [0, 1, 2], capacity=0) == 0

    def test_rejects_duplicate_station(self):
        eng = IncrementalAssignment(2)
        eng.open("a", [0], 1)
        with pytest.raises(ValueError, match="already"):
            eng.open("a", [1], 1)

    def test_rejects_bad_user(self):
        eng = IncrementalAssignment(2)
        with pytest.raises(IndexError):
            eng.open("a", [5], 1)

    def test_rejects_negative_capacity(self):
        eng = IncrementalAssignment(2)
        with pytest.raises(ValueError):
            eng.open("a", [0], -1)


class TestChains:
    def test_reassignment_chain(self):
        """Station B takes user 0 from A; A recovers with user 1."""
        eng = IncrementalAssignment(2)
        assert eng.open("A", [0, 1], capacity=1) == 1
        assert eng.open("B", [0], capacity=1) == 1
        assert eng.served_count == 2
        assignment = eng.assignment()
        assert sorted(assignment["A"] + assignment["B"]) == [0, 1]
        assert assignment["B"] == [0]

    def test_two_level_chain(self):
        eng = IncrementalAssignment(3)
        eng.open("A", [0, 1], 1)   # A takes 0
        eng.open("B", [1, 2], 1)   # B takes 1 or 2
        gain = eng.open("C", [0], 1)  # C needs 0 -> chain through A (and B)
        assert gain == 1
        assert eng.served_count == 3


class TestTryRollback:
    def test_rollback_restores_everything(self):
        eng = IncrementalAssignment(4)
        eng.open("A", [0, 1], 2)
        before_assignment = {u: eng.station_of(u) for u in range(4)}
        before_served = eng.served_count
        gain = eng.try_open("B", [0, 1, 2, 3], 4)
        assert gain == 2  # users 2, 3 direct (0, 1 already maxed by A)
        eng.rollback()
        assert eng.served_count == before_served
        assert {u: eng.station_of(u) for u in range(4)} == before_assignment
        assert "B" not in eng.stations()

    def test_rollback_restores_chain_moves(self):
        eng = IncrementalAssignment(2)
        eng.open("A", [0, 1], 1)
        taken = next(u for u in (0, 1) if eng.station_of(u) == "A")
        eng.try_open("B", [taken], 1)
        eng.rollback()
        assert eng.station_of(taken) == "A"
        assert eng.served_count == 1

    def test_commit_keeps(self):
        eng = IncrementalAssignment(2)
        gain = eng.try_open("A", [0], 1)
        eng.commit()
        assert gain == 1 and eng.served_count == 1

    def test_pending_discipline(self):
        eng = IncrementalAssignment(2)
        eng.try_open("A", [0], 1)
        with pytest.raises(RuntimeError, match="pending"):
            eng.try_open("B", [1], 1)
        eng.commit()
        with pytest.raises(RuntimeError):
            eng.commit()
        with pytest.raises(RuntimeError):
            eng.rollback()

    def test_gain_equals_committed_delta(self):
        rng = np.random.default_rng(9)
        eng = IncrementalAssignment(30)
        for i in range(8):
            covers = [int(u) for u in rng.choice(30, size=12, replace=False)]
            before = eng.served_count
            gain = eng.try_open(i, covers, int(rng.integers(1, 6)))
            eng.commit()
            assert eng.served_count - before == gain


class TestOptimality:
    @given(st.integers(0, 100_000), st.integers(1, 15), st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_matches_dinic(self, seed, num_users, num_stations):
        stations = random_instance(seed, num_users, num_stations)
        eng = IncrementalAssignment(num_users)
        for i, (covers, cap) in enumerate(stations):
            eng.open(i, covers, cap)
        assert eng.served_count == dinic_value(num_users, stations)

    @given(st.integers(0, 100_000), st.integers(1, 12), st.integers(2, 5))
    @settings(max_examples=30, deadline=None)
    def test_order_independent(self, seed, num_users, num_stations):
        stations = random_instance(seed, num_users, num_stations)
        values = []
        for order_seed in (0, 1):
            rng = np.random.default_rng(order_seed)
            order = rng.permutation(len(stations))
            eng = IncrementalAssignment(num_users)
            for i in order:
                covers, cap = stations[int(i)]
                eng.open(int(i), covers, cap)
            values.append(eng.served_count)
        assert values[0] == values[1]

    @given(st.integers(0, 100_000), st.integers(1, 12), st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_try_open_gain_is_exact_flow_delta(self, seed, num_users, n_st):
        stations = random_instance(seed, num_users, n_st)
        eng = IncrementalAssignment(num_users)
        for i, (covers, cap) in enumerate(stations[:-1]):
            eng.open(i, covers, cap)
        covers, cap = stations[-1]
        gain = eng.try_open("last", covers, cap)
        eng.rollback()
        full = dinic_value(num_users, stations)
        partial = dinic_value(num_users, stations[:-1])
        assert gain == full - partial


class TestInvariants:
    @given(st.integers(0, 100_000), st.integers(1, 20), st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_loads_and_coverage_respected(self, seed, num_users, n_st):
        stations = random_instance(seed, num_users, n_st)
        eng = IncrementalAssignment(num_users)
        for i, (covers, cap) in enumerate(stations):
            eng.open(i, covers, cap)
        assignment = eng.assignment()
        seen_users: set = set()
        for i, users in assignment.items():
            covers, cap = stations[i]
            assert len(users) <= cap
            assert set(users) <= set(covers)
            assert eng.load_of(i) == len(users)
            assert not (set(users) & seen_users)
            seen_users |= set(users)
        assert len(seen_users) == eng.served_count


def engine_state(eng: IncrementalAssignment) -> tuple:
    """Full observable state, for exact snapshot comparisons."""
    return (
        eng.served_count,
        eng.stations(),
        eng.assignment(),
        [eng.load_of(s) for s in eng.stations()],
        [eng.station_of(u) for u in range(eng.num_users)],
    )


class TestForkRollback:
    def test_rollback_restores_exact_state(self):
        eng = IncrementalAssignment(6)
        eng.open("a", [0, 1, 2], 2)
        before = engine_state(eng)
        eng.fork()
        eng.open("b", [0, 1, 3], 2)   # forces chain reassignments
        eng.open("c", [2, 4, 5], 3)
        assert eng.served_count > 4 - 1
        eng.rollback_fork()
        assert engine_state(eng) == before

    def test_release_keeps_mutations(self):
        eng = IncrementalAssignment(4)
        eng.fork()
        eng.open("a", [0, 1], 2)
        eng.release_fork()
        assert eng.served_count == 2
        eng.fork()  # scope reusable after release
        eng.rollback_fork()
        assert eng.served_count == 2

    def test_rollback_fork_clears_pending_first(self):
        eng = IncrementalAssignment(4)
        eng.fork()
        eng.try_open("a", [0, 1], 2)
        eng.rollback_fork()
        assert eng.served_count == 0
        assert eng.stations() == []

    def test_fork_discipline(self):
        eng = IncrementalAssignment(3)
        with pytest.raises(RuntimeError):
            eng.rollback_fork()
        with pytest.raises(RuntimeError):
            eng.release_fork()
        eng.fork()
        with pytest.raises(RuntimeError):
            eng.fork()
        eng.try_open("a", [0], 1)
        with pytest.raises(RuntimeError):
            eng.fork()
        eng.commit()
        eng.release_fork()

    @pytest.mark.parametrize("chain", ["bfs", "dfs"])
    @given(st.integers(0, 100_000), st.integers(1, 24), st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_fork_cycle_is_lossless(self, chain, seed, num_users, n_st):
        """fork -> arbitrary opens -> rollback_fork is an exact no-op, and
        the engine afterwards behaves identically to one that never
        forked (same committed instance appended)."""
        stations = random_instance(seed, num_users, n_st)
        half = len(stations) // 2
        eng = IncrementalAssignment(num_users, chain=chain)
        for i, (covers, cap) in enumerate(stations[:half]):
            eng.open(i, covers, cap)
        before = engine_state(eng)
        eng.fork()
        for i, (covers, cap) in enumerate(stations[half:]):
            eng.open(("fork", i), covers, cap)
        eng.rollback_fork()
        assert engine_state(eng) == before
        # Post-rollback opens still reach the exact optimum.
        for i, (covers, cap) in enumerate(stations[half:]):
            eng.open(("again", i), covers, cap)
        assert eng.served_count == dinic_value(num_users, stations)


class TestChainModes:
    @given(st.integers(0, 100_000), st.integers(1, 24), st.integers(1, 7))
    @settings(max_examples=40, deadline=None)
    def test_bfs_and_dfs_values_agree(self, seed, num_users, n_st):
        """The vectorised BFS engine and the scalar Kuhn DFS reference
        realise the same maximum after every open (values, not
        necessarily the same witness assignment)."""
        stations = random_instance(seed, num_users, n_st)
        bfs = IncrementalAssignment(num_users, chain="bfs")
        dfs = IncrementalAssignment(num_users, chain="dfs")
        for i, (covers, cap) in enumerate(stations):
            g_bfs = bfs.open(i, covers, cap)
            g_dfs = dfs.open(i, covers, cap)
            assert bfs.served_count == dfs.served_count
            assert g_bfs == g_dfs
        assert bfs.served_count == dinic_value(num_users, stations)

    def test_chain_replay_stress(self):
        """A wide last station after many tight ones forces long runs of
        chain augmentations — the replay fast path — and must still land
        on the independent max-flow value."""
        rng = np.random.default_rng(42)
        num_users = 120
        stations = []
        for _ in range(10):
            covers = sorted(
                int(u) for u in rng.choice(num_users, size=30, replace=False)
            )
            stations.append((covers, 8))
        stations.append((list(range(num_users)), 60))
        eng = IncrementalAssignment(num_users)
        for i, (covers, cap) in enumerate(stations):
            eng.open(i, covers, cap)
        assert eng.served_count == dinic_value(num_users, stations)
