"""Tests for the air-to-ground channel model (Al-Hourani)."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.atg import AirToGroundChannel, los_probability
from repro.channel.freespace import free_space_pathloss_db
from repro.channel.presets import DENSE_URBAN, SUBURBAN, URBAN
from repro.geometry.point import Point3D


class TestLosProbability:
    def test_range(self):
        for theta in (0, 10, 45, 80, 90):
            p = los_probability(theta, URBAN)
            assert 0.0 < p < 1.0

    def test_monotone_in_angle(self):
        probs = [los_probability(t, URBAN) for t in range(0, 91, 5)]
        assert probs == sorted(probs)

    def test_overhead_near_certain(self):
        assert los_probability(90.0, URBAN) > 0.99

    def test_suburban_more_los_than_dense(self):
        # Fewer obstructions -> higher LoS probability at the same angle.
        for theta in (10, 30, 60):
            assert los_probability(theta, SUBURBAN) > los_probability(
                theta, DENSE_URBAN
            )

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            los_probability(-1.0, URBAN)
        with pytest.raises(ValueError):
            los_probability(90.5, URBAN)


class TestAirToGroundChannel:
    def test_pathloss_between_los_and_nlos_extremes(self):
        ch = AirToGroundChannel(URBAN)
        user = Point3D(0, 0, 0)
        uav = Point3D(400, 0, 300)
        fspl = free_space_pathloss_db(user.distance_to(uav), ch.carrier_hz)
        pl = ch.pathloss_db(user, uav)
        assert fspl + URBAN.eta_los_db <= pl <= fspl + URBAN.eta_nlos_db

    def test_monotone_in_horizontal_distance(self):
        ch = AirToGroundChannel(URBAN)
        losses = [ch.pathloss_at_db(r, 300.0) for r in (50, 200, 500, 1000, 2000)]
        assert losses == sorted(losses)

    def test_optimal_altitude_exists(self):
        """The hallmark of the model (paper [2]): at a fixed horizontal
        distance there is an interior optimal altitude — too low is NLoS-
        dominated, too high pays distance."""
        ch = AirToGroundChannel(URBAN)
        altitudes = np.linspace(20, 3000, 120)
        losses = [ch.pathloss_at_db(500.0, float(h)) for h in altitudes]
        best = int(np.argmin(losses))
        assert 0 < best < len(losses) - 1

    def test_vector_matches_scalar(self):
        ch = AirToGroundChannel(DENSE_URBAN)
        horizontals = np.array([10.0, 100.0, 400.0, 900.0])
        vec = ch.pathloss_vector_db(horizontals, 300.0)
        for h, v in zip(horizontals, vec):
            assert v == pytest.approx(ch.pathloss_at_db(float(h), 300.0), rel=1e-9)

    @given(st.floats(1.0, 5000.0), st.floats(10.0, 2000.0))
    @settings(max_examples=50, deadline=None)
    def test_vector_scalar_property(self, horizontal, altitude):
        ch = AirToGroundChannel(URBAN)
        vec = ch.pathloss_vector_db(np.array([horizontal]), altitude)
        assert vec[0] == pytest.approx(
            ch.pathloss_at_db(horizontal, altitude), rel=1e-9
        )

    def test_rejects_nonpositive_altitude(self):
        ch = AirToGroundChannel(URBAN)
        with pytest.raises(ValueError):
            ch.pathloss_at_db(100.0, 0.0)
