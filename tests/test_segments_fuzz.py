"""Fuzz pass over Algorithm 1 (:mod:`repro.core.segments`).

Random ``(s, K)`` pairs assert the binary-searched plan is exactly what
the paper claims:

* feasibility — the returned split satisfies Eq. 2, ``g(L, p) <= K``,
  with ``len(p) == s + 1`` and ``sum(p) == L_max - s``;
* maximality — ``L_max + 1`` is infeasible: *every* composition of
  ``L_max + 1 - s`` interior nodes into ``s + 1`` segments violates the
  relay bound (the exhaustive scan, not just the balanced splits
  Algorithm 1 considers);
* optimality of the balanced split — on small inputs the plan matches
  the full brute-force reference (:func:`brute_force_segments`) in both
  ``L_max`` and the minimum relay bound, confirming the structural lemma
  that balanced splits suffice;
* Eq. 1 sanity — ``Q_0 == L_max``, the ``Q_h`` sequence is
  non-increasing, and it has exactly ``h_max + 1`` entries.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.segments import (
    brute_force_segments,
    hmax_of,
    optimal_segments,
    q_bounds,
    relay_bound,
)


def _compositions(total: int, parts: int):
    if parts == 1:
        yield (total,)
        return
    for first in range(total + 1):
        for rest in _compositions(total - first, parts - 1):
            yield (first,) + rest


_sk = st.integers(min_value=1, max_value=5).flatmap(
    lambda s: st.tuples(
        st.just(s), st.integers(min_value=s, max_value=60)
    )
)

_sk_small = st.integers(min_value=1, max_value=4).flatmap(
    lambda s: st.tuples(
        st.just(s), st.integers(min_value=s, max_value=18)
    )
)


@given(sk=_sk)
@settings(max_examples=120, deadline=None)
def test_plan_feasible_and_lmax_plus_one_infeasible(sk):
    s, k = sk
    plan = optimal_segments(k, s)

    # Shape and Eq. 2 feasibility of the returned split.
    assert len(plan.p) == s + 1
    assert all(pi >= 0 for pi in plan.p)
    assert sum(plan.p) == plan.lmax - s
    assert s <= plan.lmax <= k
    assert plan.relay_bound == relay_bound(list(plan.p))
    assert plan.relay_bound <= k, (
        f"g(L, p) = {plan.relay_bound} > K = {k} for s={s}"
    )

    # Maximality: no composition whatsoever makes L_max + 1 fit.
    interior = plan.lmax + 1 - s
    assert all(
        relay_bound(list(p)) > k
        for p in _compositions(interior, s + 1)
    ), f"L_max + 1 = {plan.lmax + 1} admits a feasible split (s={s}, K={k})"


@given(sk=_sk_small)
@settings(max_examples=60, deadline=None)
def test_plan_matches_brute_force_reference(sk):
    s, k = sk
    plan = optimal_segments(k, s)
    brute = brute_force_segments(k, s)
    assert plan.lmax == brute.lmax, (
        f"binary search found L_max = {plan.lmax}, brute force "
        f"{brute.lmax} (s={s}, K={k})"
    )
    # Ties in p are fine; the minimised relay bound must agree.
    assert plan.relay_bound == brute.relay_bound


@given(sk=_sk)
@settings(max_examples=120, deadline=None)
def test_q_bounds_sane(sk):
    s, k = sk
    plan = optimal_segments(k, s)
    q = plan.q_bounds()
    assert q == q_bounds(plan.lmax, list(plan.p))
    assert q[0] == plan.lmax
    assert len(q) == hmax_of(list(plan.p)) + 1
    assert all(a >= b for a, b in zip(q, q[1:])), (
        f"Q_h must be non-increasing, got {q}"
    )
    assert all(v >= 0 for v in q)
    # At the largest hop distance somebody is still that far out (unless
    # there are no interior nodes at all and the list is just [L]).
    if len(q) > 1:
        assert q[-1] >= 1
