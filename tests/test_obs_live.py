"""Tests for the live heartbeat reporter (``repro.obs.live``).

The reporter is driven two ways: thread-free via :meth:`LiveReporter.sample`
with an injected clock and a private registry (deterministic rate/ETA/stall
math), and end-to-end with the real daemon thread against an in-memory
stream (lifecycle, rendering, stall warnings).
"""

from __future__ import annotations

import io
import time

import pytest

from repro import obs
from repro.obs.live import (
    DEFAULT_ACTIVITY_COUNTERS,
    LiveConfig,
    LiveReporter,
    LiveSample,
    _fmt_eta,
)


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class _Clock:
    """Deterministic monotonic clock for thread-free sampling."""

    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, dt: float) -> None:
        self.now += dt

    def __call__(self) -> float:
        return self.now


class _Tty(io.StringIO):
    def isatty(self) -> bool:
        return True


def _reporter(registry, clock=None, **cfg):
    return LiveReporter(
        LiveConfig(**cfg),
        registry=registry,
        clock=clock if clock is not None else _Clock(),
    )


# -- config validation -------------------------------------------------------


def test_config_rejects_nonpositive_interval():
    with pytest.raises(ValueError, match="interval"):
        LiveConfig(interval_s=0)


def test_config_rejects_zero_stall_intervals():
    with pytest.raises(ValueError, match="stall_intervals"):
        LiveConfig(stall_intervals=0)


def test_config_rejects_bad_alpha():
    with pytest.raises(ValueError, match="ewma_alpha"):
        LiveConfig(ewma_alpha=0.0)
    with pytest.raises(ValueError, match="ewma_alpha"):
        LiveConfig(ewma_alpha=1.5)


# -- sampling math (thread-free) ---------------------------------------------


def test_sample_progress_rate_and_eta():
    registry = obs.MetricsRegistry()
    clock = _Clock()
    reporter = _reporter(registry, clock)
    registry.inc("approx.subsets_planned", 100)

    first = reporter.sample()
    assert (first.done, first.total) == (0, 100)
    assert first.rate == 0.0 and first.eta_s is None
    assert first.fraction == 0.0

    clock.advance(1.0)
    registry.inc("approx.subsets_done", 10)
    second = reporter.sample()
    assert second.rate == pytest.approx(10.0)
    assert second.eta_s == pytest.approx(90 / 10.0)

    clock.advance(1.0)
    registry.inc("approx.subsets_done", 20)   # 30 done, instant rate 20/s
    third = reporter.sample()
    # EWMA with alpha=0.3: 0.3 * 20 + 0.7 * 10.
    assert third.rate == pytest.approx(13.0)
    assert third.eta_s == pytest.approx(70 / 13.0)
    assert third.fraction == pytest.approx(0.30)


def test_fraction_is_none_without_total_and_caps_at_one():
    assert LiveSample(done=5, total=0, rate=0, eta_s=None,
                      activity=5, stalled=False).fraction is None
    assert LiveSample(done=15, total=10, rate=0, eta_s=None,
                      activity=15, stalled=False).fraction == 1.0


def test_stall_detection_fires_after_quiet_intervals_and_rearms():
    registry = obs.MetricsRegistry()
    clock = _Clock()
    reporter = _reporter(registry, clock, stall_intervals=3)
    registry.inc("approx.subsets_done", 5)

    assert not reporter.sample().stalled        # establishes the baseline
    for _ in range(2):
        clock.advance(1.0)
        assert not reporter.sample().stalled    # 1, 2 quiet intervals
    clock.advance(1.0)
    assert reporter.sample().stalled            # 3rd quiet interval

    registry.inc("greedy.oracle_calls")         # any watched counter re-arms
    clock.advance(1.0)
    assert not reporter.sample().stalled


def test_activity_watches_the_default_counter_set():
    registry = obs.MetricsRegistry()
    reporter = _reporter(registry)
    for name in DEFAULT_ACTIVITY_COUNTERS:
        registry.inc(name)
    sample = reporter.sample()
    # subsets_done is both the progress counter and an activity counter,
    # so it counts twice in the liveness sum; the rest once each.
    assert sample.activity == len(DEFAULT_ACTIVITY_COUNTERS) + 1


def test_worker_gauges_become_utilization():
    registry = obs.MetricsRegistry()
    reporter = _reporter(registry)
    registry.set_gauge("approx.worker.111.subsets", 40)
    registry.set_gauge("approx.worker.222.subsets", 60)
    registry.set_gauge("unrelated.gauge", 1)
    sample = reporter.sample()
    assert sample.workers == {"111": 40, "222": 60}
    line = reporter.render(sample)
    assert "w111:40%" in line and "w222:60%" in line


def test_render_warming_up_and_stalled_marker():
    registry = obs.MetricsRegistry()
    reporter = _reporter(registry)
    sample = reporter.sample()
    line = reporter.render(sample)
    assert line.startswith("[live]")
    assert "warming up" in line and "eta ?" in line
    stalled = LiveSample(done=1, total=2, rate=0.5, eta_s=2.0,
                         activity=1, stalled=True)
    assert "STALLED" in reporter.render(stalled)


def test_fmt_eta_ranges():
    assert _fmt_eta(None) == "eta ?"
    assert _fmt_eta(45) == "eta 45s"
    assert _fmt_eta(125) == "eta 2m05s"
    assert _fmt_eta(7200) == "eta 2.0h"


# -- lifecycle (real thread) -------------------------------------------------


def test_start_stop_cleanly_and_emit_closing_sample():
    stream = io.StringIO()
    registry = obs.MetricsRegistry()
    registry.inc("approx.subsets_planned", 10)
    registry.inc("approx.subsets_done", 10)
    reporter = LiveReporter(
        LiveConfig(interval_s=60.0, stream=stream), registry=registry
    )
    reporter.start()
    assert reporter.running
    with pytest.raises(RuntimeError, match="already running"):
        reporter.start()
    reporter.stop()
    assert not reporter.running
    reporter.stop()   # idempotent

    text = stream.getvalue()
    assert "[live]" in text and "10/10 subsets" in text
    assert text.endswith("\n")
    assert reporter.samples_taken >= 1


def test_context_manager_and_non_tty_plain_lines():
    stream = io.StringIO()
    registry = obs.MetricsRegistry()
    with LiveReporter(
        LiveConfig(interval_s=0.01, stream=stream), registry=registry
    ):
        time.sleep(0.05)
    text = stream.getvalue()
    assert text and "\r" not in text
    assert all(not line or line.startswith("[live]")
               for line in text.split("\n"))


def test_tty_renders_in_place_then_final_newline():
    stream = _Tty()
    registry = obs.MetricsRegistry()
    with LiveReporter(
        LiveConfig(interval_s=60.0, stream=stream), registry=registry
    ):
        pass
    text = stream.getvalue()
    assert text.startswith("\r")
    assert text.endswith("\n")


def test_stall_warning_emitted_once_and_counted():
    stream = io.StringIO()
    registry = obs.MetricsRegistry()
    reporter = LiveReporter(
        LiveConfig(interval_s=0.01, stall_intervals=2, stream=stream),
        registry=registry,
    )
    with reporter:
        time.sleep(0.3)   # plenty of quiet samples -> exactly one episode
    assert reporter.stall_warnings == 1
    assert registry.snapshot()["counters"]["live.stalls"] == 1
    text = stream.getvalue()
    assert text.count("WARNING: no counter movement") == 1


def test_reporter_does_not_enable_obs_or_write_counters():
    """Off-by-default contract: a reporter left running over a healthy
    (moving) registry only reads — the global obs switch stays off and no
    counters appear that the solver did not write."""
    stream = io.StringIO()
    with LiveReporter(LiveConfig(interval_s=60.0, stream=stream)):
        pass
    assert not obs.is_enabled()
    assert obs.metrics_snapshot()["counters"] == {}


def test_write_survives_closed_stream():
    stream = io.StringIO()
    registry = obs.MetricsRegistry()
    reporter = LiveReporter(
        LiveConfig(interval_s=60.0, stream=stream), registry=registry
    )
    reporter.start()
    stream.close()
    reporter.stop()   # must not raise despite the dead stream
