"""Tests for fleet-sizing helpers."""

import pytest

from repro.core.approx import appro_alg
from repro.sim.planning import coverage_curve, uavs_needed_for_target
from tests.conftest import make_line_instance


def planner(problem):
    return appro_alg(problem, s=min(2, problem.num_uavs),
                     gain_mode="fast").deployment


@pytest.fixture
def problem():
    # 5 piles of 2 users; capacities of 2 -> each UAV adds one pile.
    return make_line_instance(
        num_locations=5, users_per_location=2,
        capacities=(2, 2, 2, 2, 2),
    )


class TestCoverageCurve:
    def test_monotone_prefix_curve(self, problem):
        points = coverage_curve(problem, planner)
        served = [p.served for p in points]
        assert len(points) == 5
        assert served == sorted(served)
        assert points[-1].fraction == 1.0

    def test_custom_ks(self, problem):
        points = coverage_curve(problem, planner, ks=[1, 3, 5])
        assert [p.num_uavs for p in points] == [1, 3, 5]

    def test_bad_k_rejected(self, problem):
        with pytest.raises(ValueError):
            coverage_curve(problem, planner, ks=[0])
        with pytest.raises(ValueError):
            coverage_curve(problem, planner, ks=[6])


class TestUavsNeededForTarget:
    def test_exact_fleet_size(self, problem):
        # Connected prefixes: k UAVs serve 2k of 10 users.
        sizing = uavs_needed_for_target(problem, planner, 0.6)
        assert sizing.achieved
        assert sizing.required_uavs == 3
        assert sizing.curve[-1].fraction >= 0.6

    def test_full_coverage(self, problem):
        sizing = uavs_needed_for_target(problem, planner, 1.0)
        assert sizing.required_uavs == 5

    def test_unreachable_target(self):
        problem = make_line_instance(
            num_locations=5, users_per_location=2, capacities=(2, 2)
        )
        sizing = uavs_needed_for_target(problem, planner, 0.9)
        assert not sizing.achieved
        assert sizing.required_uavs is None
        assert len(sizing.curve) == 2  # walked the whole (tiny) fleet

    def test_validation(self, problem):
        with pytest.raises(ValueError):
            uavs_needed_for_target(problem, planner, 0.0)
        with pytest.raises(ValueError):
            uavs_needed_for_target(problem, planner, 1.5)
