"""Tests for environment presets."""

import pytest

from repro.channel.presets import (
    DENSE_URBAN,
    ENVIRONMENTS,
    HIGHRISE_URBAN,
    SUBURBAN,
    URBAN,
    get_environment,
)


def test_all_presets_registered():
    assert set(ENVIRONMENTS) == {
        "suburban",
        "urban",
        "dense-urban",
        "highrise-urban",
    }


def test_nlos_excess_exceeds_los():
    for env in ENVIRONMENTS.values():
        assert env.eta_nlos_db > env.eta_los_db


def test_highrise_harshest_and_sigmoid_flattens_with_density():
    # The published fits are not strictly monotone in eta_nlos between
    # suburban and urban, but high-rise is the harshest environment and the
    # LoS sigmoid slope b decreases (flattens) with building density.
    assert HIGHRISE_URBAN.eta_nlos_db == max(
        env.eta_nlos_db for env in ENVIRONMENTS.values()
    )
    slopes = [env.b for env in (SUBURBAN, URBAN, DENSE_URBAN, HIGHRISE_URBAN)]
    assert slopes == sorted(slopes, reverse=True)


def test_get_environment():
    assert get_environment("urban") is URBAN
    with pytest.raises(KeyError, match="known"):
        get_environment("marsian")
