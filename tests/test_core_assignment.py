"""Tests for the Section II-D optimal assignment (Lemma 1)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assignment import max_served, optimal_assignment
from repro.network.validate import validate_deployment
from tests.conftest import make_line_instance


class TestOptimalAssignment:
    def test_empty_placements(self):
        problem = make_line_instance()
        dep = optimal_assignment(problem.graph, problem.fleet, {})
        assert dep.served_count == 0

    def test_single_uav_capacity_binds(self):
        problem = make_line_instance(
            num_locations=3, users_per_location=4, capacities=(2, 9, 9)
        )
        dep = optimal_assignment(problem.graph, problem.fleet, {0: 0})
        assert dep.served_count == 2  # capacity 2 < 4 users beneath

    def test_single_uav_coverage_binds(self):
        problem = make_line_instance(
            num_locations=3, users_per_location=4, capacities=(9, 9, 9)
        )
        dep = optimal_assignment(problem.graph, problem.fleet, {0: 0})
        # Ground radius = sqrt(500^2 - 300^2) = 400 m < 500 m spacing, so a
        # UAV over location 0 covers only its own 4 users.
        assert dep.served_count == 4

    def test_user_served_at_most_once(self):
        problem = make_line_instance()
        placements = {k: k for k in range(problem.num_uavs)}
        dep = optimal_assignment(problem.graph, problem.fleet, placements)
        # dict keys are unique by construction; also validate fully:
        validate_deployment(problem.graph, problem.fleet, dep,
                            require_connected=False)

    def test_rejects_bad_indices(self):
        problem = make_line_instance()
        with pytest.raises(IndexError):
            optimal_assignment(problem.graph, problem.fleet, {99: 0})
        with pytest.raises(IndexError):
            optimal_assignment(problem.graph, problem.fleet, {0: 99})

    def test_lemma1_optimality_brute_force(self):
        """Cross-check the max-flow value against brute-force enumeration
        of all feasible assignments on a tiny overlapping instance."""
        problem = make_line_instance(
            num_locations=3, users_per_location=2,
            capacities=(1, 2, 1), spacing=300.0,  # overlapping coverage
        )
        graph, fleet = problem.graph, problem.fleet
        placements = {0: 0, 1: 1, 2: 2}
        flow_value = max_served(graph, fleet, placements)

        coverable = {
            k: set(graph.coverable_users(loc, fleet[k]))
            for k, loc in placements.items()
        }
        best = 0
        n = graph.num_users
        options = []  # per user: list of (uav or None)
        for u in range(n):
            opts = [None] + [k for k in placements if u in coverable[k]]
            options.append(opts)
        for combo in itertools.product(*options):
            loads: dict = {}
            ok = True
            for u, k in enumerate(combo):
                if k is None:
                    continue
                loads[k] = loads.get(k, 0) + 1
                if loads[k] > fleet[k].capacity:
                    ok = False
                    break
            if ok:
                best = max(best, sum(1 for k in combo if k is not None))
        assert flow_value == best

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_random_instances_match_incremental(self, seed):
        """optimal_assignment (Dinic) and CoverageObjective (incremental
        augmentation) must agree on random sub-fleets."""
        from repro.matroid.submodular import CoverageObjective

        problem = make_line_instance(
            num_locations=5, users_per_location=3,
            capacities=(1, 2, 3, 2, 1), spacing=350.0,
        )
        rng = np.random.default_rng(seed)
        size = int(rng.integers(1, 5))
        uavs = rng.choice(problem.num_uavs, size=size, replace=False)
        locs = rng.choice(problem.num_locations, size=size, replace=False)
        placements = {int(k): int(j) for k, j in zip(uavs, locs)}
        flow = max_served(problem.graph, problem.fleet, placements)
        objective = CoverageObjective(problem.graph, problem.fleet)
        assert flow == objective.value(list(placements.items()))

    def test_capacity_zero_uav_serves_nobody(self):
        problem = make_line_instance(capacities=(0, 4, 4, 4, 4))
        dep = optimal_assignment(problem.graph, problem.fleet, {0: 0})
        assert dep.served_count == 0
