"""Tests for the gateway-UAV extension."""

import pytest

from repro.core.gateway import (
    Gateway,
    appro_alg_with_gateway,
    ensure_gateway,
    gateway_adjacent_locations,
    has_gateway_link,
)
from repro.geometry.point import Point2D
from repro.network.deployment import Deployment
from repro.network.validate import validate_deployment
from tests.conftest import make_line_instance


@pytest.fixture
def problem():
    # Line of 6 locations at x = 500..3000, altitude 300, R_uav = 600.
    return make_line_instance(
        num_locations=6, users_per_location=2,
        capacities=(2, 2, 2, 2, 2, 2),
    )


def gateway_at(x: float) -> Gateway:
    return Gateway(position=Point2D(x, 0.0))


class TestAdjacency:
    def test_adjacent_set(self, problem):
        # Antenna at (500, 0, 5): distance to location 0 (500, 0, 300) is
        # 295 m <= 600; to location 1 (1000, 0, 300) sqrt(500^2+295^2) ~ 580.
        gw = gateway_at(500.0)
        assert gateway_adjacent_locations(problem, gw) == [0, 1]

    def test_no_adjacent_far_gateway(self, problem):
        gw = gateway_at(50_000.0)
        assert gateway_adjacent_locations(problem, gw) == []


class TestHasLink:
    def test_detects_link(self, problem):
        gw = gateway_at(500.0)
        dep = Deployment(placements={0: 0})
        assert has_gateway_link(problem, dep, gw)
        dep_far = Deployment(placements={0: 5})
        assert not has_gateway_link(problem, dep_far, gw)


class TestEnsureGateway:
    def test_noop_when_linked(self, problem):
        gw = gateway_at(500.0)
        dep = Deployment(placements={0: 0}, assignment={})
        assert ensure_gateway(problem, dep, gw) is dep

    def test_extends_with_relays(self, problem):
        """Network at locations 4-5, gateway near location 0: relays must
        staff the path 3-2-1 (or reach location 1, the nearest adjacent)."""
        gw = gateway_at(500.0)
        dep = Deployment(placements={0: 4, 1: 5}, assignment={})
        extended = ensure_gateway(problem, dep, gw)
        assert extended is not None
        assert has_gateway_link(problem, extended, gw)
        validate_deployment(problem.graph, problem.fleet, extended)
        # Original placements preserved.
        assert extended.placements[0] == 4
        assert extended.placements[1] == 5

    def test_relays_serve_users(self, problem):
        gw = gateway_at(500.0)
        dep = Deployment(placements={0: 4, 1: 5}, assignment={})
        extended = ensure_gateway(problem, dep, gw)
        # New relays over piles 1..3 pick up users via re-assignment.
        assert extended.served_count > 0

    def test_fails_without_spare_uavs(self):
        problem = make_line_instance(
            num_locations=6, users_per_location=1, capacities=(1, 1)
        )
        gw = gateway_at(500.0)
        dep = Deployment(placements={0: 4, 1: 5}, assignment={})
        assert ensure_gateway(problem, dep, gw) is None

    def test_fails_when_no_adjacent_location(self, problem):
        gw = gateway_at(50_000.0)
        dep = Deployment(placements={0: 0}, assignment={})
        assert ensure_gateway(problem, dep, gw) is None

    def test_empty_deployment(self, problem):
        gw = gateway_at(500.0)
        assert ensure_gateway(problem, Deployment.empty(), gw) is None


class TestApproWithGateway:
    def test_end_to_end(self, problem):
        gw = gateway_at(500.0)
        dep = appro_alg_with_gateway(problem, gw, s=2)
        assert dep is not None
        assert has_gateway_link(problem, dep, gw)
        validate_deployment(problem.graph, problem.fleet, dep)

    def test_small_scenario(self, small_scenario):
        gw = Gateway(position=Point2D(0.0, 0.0))
        dep = appro_alg_with_gateway(
            small_scenario, gw, s=2, gain_mode="fast"
        )
        assert dep is not None
        assert has_gateway_link(small_scenario, dep, gw)
        validate_deployment(small_scenario.graph, small_scenario.fleet, dep)

    def test_unreachable_gateway_returns_none(self, problem):
        gw = gateway_at(50_000.0)
        assert appro_alg_with_gateway(problem, gw, s=2) is None
