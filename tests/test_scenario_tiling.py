"""Tiled-solve equivalence and carve-invariant tests.

The tiling layer's two structural promises:

* a ``1x1`` grid is the *identity*: the carve returns the global problem
  object itself, and a tiled pipeline run is bit-identical to the plain
  run of the same spec (served count, placements, assignment);
* for any grid/overlap, demand nodes partition into tiles (each node in
  exactly one core), fleet slices are disjoint, and the final deployment
  comes from one global max flow — so no user or demand unit can ever be
  double-counted, which the fuzz pass checks on per-user *and*
  demand-cell variants over several grids and overlap widths.
"""

from __future__ import annotations

import pytest

from repro.network.deployment import CellDeployment, Deployment
from repro.network.validate import (
    validate_cell_deployment,
    validate_deployment,
)
from repro.scenario.pipeline import SolvePipeline
from repro.scenario.spec import ScenarioSpec, SpecError
from repro.scenario.tiling import carve_tiles, solve_tiled
from repro.workload.scenarios import paper_scenario

BASE = ScenarioSpec(
    name="tiling-test", scale="bench", num_users=400, num_uavs=8,
    seed=23, algorithm="approAlg", algorithm_params={"s": 1},
)


def _problem(num_users=300, num_uavs=6, seed=9):
    return paper_scenario(
        num_users=num_users, num_uavs=num_uavs, scale="bench", seed=seed
    )


class TestCarveInvariants:
    def test_1x1_is_identity(self):
        problem = _problem()
        tiles = carve_tiles(problem, (1, 1), overlap_m=250.0)
        assert len(tiles) == 1
        tile = tiles[0]
        assert tile.problem is problem
        assert tile.node_map == tuple(range(problem.num_users))
        assert tile.location_map == tuple(range(problem.num_locations))
        assert tile.fleet_map == tuple(range(problem.num_uavs))
        assert tile.demand_units == problem.num_users

    @pytest.mark.parametrize("grid", [(1, 2), (2, 1), (2, 2), (3, 2)])
    @pytest.mark.parametrize("overlap", [0.0, 400.0])
    def test_nodes_partition_exactly_once(self, grid, overlap):
        problem = _problem()
        tiles = carve_tiles(problem, grid, overlap_m=overlap)
        assert len(tiles) == grid[0] * grid[1]
        seen: list = []
        for tile in tiles:
            seen.extend(tile.node_map)
        assert sorted(seen) == list(range(problem.num_users))
        assert sum(t.demand_units for t in tiles) == problem.num_users

    @pytest.mark.parametrize("grid", [(2, 2), (3, 2)])
    def test_fleet_slices_disjoint_and_valid(self, grid):
        problem = _problem()
        tiles = carve_tiles(problem, grid, overlap_m=300.0)
        used: list = []
        for tile in tiles:
            used.extend(tile.fleet_map)
            if tile.problem is not None:
                assert len(tile.fleet_map) == tile.problem.num_uavs
                assert len(tile.fleet_map) <= len(tile.location_map)
        assert len(used) == len(set(used))
        assert set(used) <= set(range(problem.num_uavs))

    def test_overlap_grows_location_sets(self):
        problem = _problem()
        tight = carve_tiles(problem, (2, 2), overlap_m=0.0)
        wide = carve_tiles(problem, (2, 2), overlap_m=600.0)
        for t0, t1 in zip(tight, wide):
            assert set(t0.location_map) <= set(t1.location_map)

    def test_deterministic(self):
        problem = _problem()
        a = carve_tiles(problem, (2, 2), overlap_m=300.0)
        b = carve_tiles(problem, (2, 2), overlap_m=300.0)
        for ta, tb in zip(a, b):
            assert ta.node_map == tb.node_map
            assert ta.location_map == tb.location_map
            assert ta.fleet_map == tb.fleet_map
            assert ta.bounds == tb.bounds

    def test_rejects_bad_grid_and_overlap(self):
        problem = _problem(num_users=50, num_uavs=2)
        with pytest.raises(ValueError):
            carve_tiles(problem, (0, 2))
        with pytest.raises(ValueError):
            carve_tiles(problem, (2, 2), overlap_m=-1.0)


class TestTiledEquivalence:
    @pytest.mark.timeout_guard(300)
    def test_1x1_tiled_bit_identical_to_untiled(self):
        plain = SolvePipeline().run(BASE)
        tiled = SolvePipeline().run(
            BASE.with_overrides(name="tiling-test-1x1", tiles="1x1")
        )
        assert isinstance(tiled.deployment, Deployment)
        assert tiled.record.served == plain.record.served
        assert tiled.deployment.placements == plain.deployment.placements
        assert tiled.deployment.assignment == plain.deployment.assignment

    @pytest.mark.timeout_guard(300)
    def test_1x1_tiled_aggregated_bit_identical(self):
        """Identity carve composed with singleton aggregation still lands
        on the plain per-user result."""
        plain = SolvePipeline().run(BASE)
        tiled = SolvePipeline().run(BASE.with_overrides(
            name="tiling-test-1x1-cells", tiles="1x1", aggregation="cells",
        ))
        assert tiled.record.served == plain.record.served
        assert tiled.deployment.placements == plain.deployment.placements
        assert tiled.deployment.assignment == plain.deployment.assignment


class TestTiledFuzz:
    """No grid/overlap combination may ever double-count a user."""

    GRIDS = ["1x2", "2x1", "2x2", "3x2"]
    OVERLAPS = [0.0, 300.0, 800.0]

    @pytest.mark.timeout_guard(600)
    @pytest.mark.parametrize("tiles", GRIDS)
    @pytest.mark.parametrize("overlap", OVERLAPS)
    def test_per_user_tiled_never_double_counts(self, tiles, overlap):
        spec = BASE.with_overrides(
            name=f"tiling-fuzz-{tiles}-{int(overlap)}",
            tiles=tiles, tile_overlap_m=overlap, seed=31,
        )
        state = SolvePipeline().run(spec)
        problem = state.problem
        deployment = state.deployment
        assert isinstance(deployment, Deployment)
        # assignment is user -> uav: each user appears at most once by
        # construction; the validator re-checks capacity, coverage and
        # connectivity from first principles.
        assert deployment.served_count == len(deployment.assignment)
        assert deployment.served_count <= problem.num_users
        validate_deployment(problem.graph, problem.fleet, deployment)
        assert state.report["tiles"] == tiles
        assert state.report["tiles_solved"] >= 1

    @pytest.mark.timeout_guard(600)
    @pytest.mark.parametrize("tiles", ["2x2", "3x2"])
    @pytest.mark.parametrize("overlap", [0.0, 500.0])
    def test_cell_tiled_never_double_counts(self, tiles, overlap):
        spec = BASE.with_overrides(
            name=f"tiling-fuzz-cells-{tiles}-{int(overlap)}",
            tiles=tiles, tile_overlap_m=overlap,
            aggregation="cells", cell_size_m=250.0, seed=37,
        )
        state = SolvePipeline().run(spec)
        problem = state.problem
        deployment = state.deployment
        graph = problem.graph
        if isinstance(deployment, CellDeployment):
            validate_cell_deployment(graph, problem.fleet, deployment)
            for c, units in deployment.cell_totals().items():
                assert units <= int(graph.cell_demands[c])
        assert deployment.served_count <= graph.total_demand
        assert state.report["num_users"] == graph.total_demand


class TestSolveTiledContract:
    def test_rejects_spec_without_tiles(self):
        with pytest.raises(SpecError):
            solve_tiled(BASE)

    def test_rejects_tile_index_spec(self):
        spec = BASE.with_overrides(tiles="2x2", tile_index=1)
        with pytest.raises(SpecError):
            solve_tiled(spec)

    def test_report_carries_tiling_keys(self):
        state = SolvePipeline().run(
            BASE.with_overrides(name="tiling-report", tiles="2x2",
                                tile_overlap_m=300.0)
        )
        for key in ("tiles", "tiles_solved", "tiles_empty",
                    "relays_added", "degraded"):
            assert key in state.report
        assert state.report["tiles_solved"] + state.report["tiles_empty"] == 4

    def test_cells_require_capable_algorithm(self):
        spec = BASE.with_overrides(
            algorithm="MCS", algorithm_params={},
            aggregation="cells", cell_size_m=200.0,
        )
        with pytest.raises(SpecError, match="supports_cells"):
            SolvePipeline().run(spec)
