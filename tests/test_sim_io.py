"""Tests for JSON serialisation of scenarios and deployments."""

import json

import pytest

from repro.core.approx import appro_alg
from repro.sim.io import (
    deployment_from_dict,
    deployment_to_dict,
    load_deployment,
    load_scenario,
    save_deployment,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.workload.scenarios import SCALES, ScenarioConfig, build_scenario
from repro.workload.uniform import UniformWorkload


class TestScenarioRoundTrip:
    def test_dict_round_trip(self):
        config = SCALES["small"]
        data = scenario_to_dict(config, seed=42)
        config2, seed2 = scenario_from_dict(data)
        assert seed2 == 42
        assert config2 == config

    def test_file_round_trip_rebuilds_identically(self, tmp_path):
        config = SCALES["small"].with_overrides(num_users=40, num_uavs=3)
        path = tmp_path / "scenario.json"
        save_scenario(path, config, seed=7)
        problem = load_scenario(path)
        reference = build_scenario(config, 7)
        assert [u.position for u in problem.graph.users] == [
            u.position for u in reference.graph.users
        ]
        assert [u.capacity for u in problem.fleet] == [
            u.capacity for u in reference.fleet
        ]

    def test_uniform_workload_round_trip(self):
        config = ScenarioConfig(workload=UniformWorkload())
        config2, _ = scenario_from_dict(scenario_to_dict(config, 0))
        assert isinstance(config2.workload, UniformWorkload)

    def test_json_is_plain(self):
        data = scenario_to_dict(SCALES["bench"], seed=1)
        json.dumps(data)  # must not raise

    def test_wrong_kind_rejected(self):
        data = scenario_to_dict(SCALES["small"], seed=1)
        data["kind"] = "deployment"
        with pytest.raises(ValueError, match="expected a scenario"):
            scenario_from_dict(data)

    def test_unknown_workload_rejected(self):
        data = scenario_to_dict(SCALES["small"], seed=1)
        data["workload"]["type"] = "QuantumFoam"
        with pytest.raises(ValueError, match="known"):
            scenario_from_dict(data)

    def test_future_format_rejected(self):
        data = scenario_to_dict(SCALES["small"], seed=1)
        data["format"] = 99
        with pytest.raises(ValueError, match="version"):
            scenario_from_dict(data)


class TestDeploymentRoundTrip:
    def test_dict_round_trip(self, small_scenario):
        result = appro_alg(small_scenario, s=2, gain_mode="fast")
        data = deployment_to_dict(result.deployment)
        restored = deployment_from_dict(data)
        assert restored.placements == result.deployment.placements
        assert restored.assignment == result.deployment.assignment

    def test_file_round_trip(self, tmp_path, small_scenario):
        result = appro_alg(small_scenario, s=2, gain_mode="fast")
        path = tmp_path / "deployment.json"
        save_deployment(path, result.deployment)
        restored = load_deployment(path)
        assert restored.served_count == result.served
        assert restored.placements == result.deployment.placements

    def test_wrong_kind_rejected(self):
        with pytest.raises(ValueError, match="expected a deployment"):
            deployment_from_dict({"kind": "scenario", "format": 1})
