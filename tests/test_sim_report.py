"""Tests for the composed deployment report."""


from repro.core.approx import appro_alg
from repro.network.deployment import Deployment
from repro.sim.report import deployment_report


class TestDeploymentReport:
    def test_sections_present(self, small_scenario):
        result = appro_alg(small_scenario, s=2, gain_mode="fast")
        report = deployment_report(small_scenario, result.deployment)
        for heading in ("== coverage ==", "== fleet ==",
                        "== worst single failures ==", "== spectrum ==",
                        "== map =="):
            assert heading in report
        assert f"{result.served}/{small_scenario.num_users}" in report

    def test_map_optional(self, small_scenario):
        result = appro_alg(small_scenario, s=2, gain_mode="fast")
        report = deployment_report(small_scenario, result.deployment,
                                   include_map=False)
        assert "== map ==" not in report

    def test_empty_deployment(self, small_scenario):
        report = deployment_report(small_scenario, Deployment.empty())
        assert "served 0" in report
        assert "== fleet ==" not in report

    def test_every_deployed_uav_listed(self, small_scenario):
        result = appro_alg(small_scenario, s=2, gain_mode="fast")
        report = deployment_report(small_scenario, result.deployment,
                                   include_map=False)
        fleet_section = report.split("== fleet ==")[1]
        first_column = [
            line.split("|")[0].strip()
            for line in fleet_section.splitlines()
            if "|" in line
        ][2:]  # skip header/separator
        listed = {int(x) for x in first_column if x.isdigit()}
        assert listed == set(result.deployment.placements)