"""Direct property test of Lemma 2 (Section III-F).

Lemma 2 claims: for anchors ``v*_1..v*_s`` whose consecutive shortest
paths have at most ``p_i`` intermediate nodes, and any ``V'`` independent
in the hop matroid ``M2`` (bounds from Eq. 1) containing the anchors, the
connected subgraph built by the algorithm has at most

    g(L, p) = s + sum(middle p_i) + end/middle relay sums   (Eq. 2)

nodes.  The paper proves it by charging each ``V'`` node its hop distance;
we test it on adversarial "spider" graphs — anchors joined by paths of
exactly ``p_i`` intermediates, with many disjoint dangling paths per
anchor so that chosen nodes genuinely cost their full hop distance in
relays (the worst case of the proof).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.segments import hmax_of, q_bounds, relay_bound
from repro.graphs.adjacency import Graph
from repro.graphs.bfs import is_connected, multi_source_hops
from repro.graphs.steiner import steiner_connect
from repro.matroid.hop import HopCountingMatroid, IncrementalHopFilter


def build_spider(p: list, arms_per_anchor: int, arm_length: int):
    """Anchors chained with exactly ``p_i`` intermediates (i = 2..s) plus
    dangling end-paths of p_1 / p_{s+1}, and ``arms_per_anchor`` extra
    disjoint arms of ``arm_length`` per anchor.

    Returns (graph, anchors)."""
    s = len(p) - 1
    edges: list = []
    next_id = 0

    def new_node() -> int:
        nonlocal next_id
        node = next_id
        next_id += 1
        return node

    anchors = [new_node()]
    for pi in p[1:-1]:
        prev = anchors[-1]
        for _ in range(pi):
            mid = new_node()
            edges.append((prev, mid))
            prev = mid
        nxt = new_node()
        edges.append((prev, nxt))
        anchors.append(nxt)
    # End segments dangle off the first and last anchors.
    for anchor, length in ((anchors[0], p[0]), (anchors[-1], p[-1])):
        prev = anchor
        for _ in range(length):
            node = new_node()
            edges.append((prev, node))
            prev = node
    # Extra arms so the matroid has room to pick expensive nodes.
    for anchor in anchors:
        for _ in range(arms_per_anchor):
            prev = anchor
            for _ in range(arm_length):
                node = new_node()
                edges.append((prev, node))
                prev = node

    graph = Graph(next_id)
    for u, v in edges:
        graph.add_edge(u, v)
    assert len(anchors) == s
    return graph, anchors


@given(
    st.lists(st.integers(0, 3), min_size=2, max_size=5),
    st.integers(1, 3),
    st.integers(0, 10_000),
)
@settings(max_examples=60, deadline=None)
def test_lemma2_relay_bound(p, arms, seed):
    """Any M2-independent superset of the anchors connects within g(L,p)
    nodes."""
    s = len(p) - 1
    length = sum(p) + s  # L: anchors + interior nodes
    graph, anchors = build_spider(p, arms_per_anchor=arms,
                                  arm_length=max(hmax_of(p), 1))
    hops = multi_source_hops(graph, anchors)
    matroid = HopCountingMatroid(hops, q_bounds(length, p))
    hop_filter = IncrementalHopFilter(matroid)
    for a in anchors:
        hop_filter.add(a)

    # Greedily add random feasible nodes until saturation.
    rng = np.random.default_rng(seed)
    universe = list(matroid.ground_set())
    rng.shuffle(universe)
    for v in universe:
        if hop_filter.can_add(v):
            hop_filter.add(v)
    chosen = sorted(hop_filter.selected)
    assert matroid.is_independent(chosen)

    nodes, _ = steiner_connect(graph, chosen)
    bound = relay_bound(p)
    assert len(nodes) <= bound, (
        f"Lemma 2 violated: |G_j| = {len(nodes)} > g = {bound} for "
        f"p = {p}, chosen = {chosen}"
    )
    assert is_connected(graph, nodes)
    assert set(chosen) <= nodes


def test_lemma2_paper_example_shape():
    """The Fig. 2 configuration: s = 3, p = (1, 2, 2, 2), L = 10,
    g = 15 — the full sub-path (10 nodes) plus relays stays within 15."""
    p = [1, 2, 2, 2]
    graph, anchors = build_spider(p, arms_per_anchor=2, arm_length=2)
    hops = multi_source_hops(graph, anchors)
    matroid = HopCountingMatroid(hops, q_bounds(10, p))
    hop_filter = IncrementalHopFilter(matroid)
    for a in anchors:
        hop_filter.add(a)
    for v in sorted(matroid.ground_set()):
        if hop_filter.can_add(v):
            hop_filter.add(v)
    nodes, _ = steiner_connect(graph, sorted(hop_filter.selected))
    assert len(nodes) <= relay_bound(p) == 15
