"""Tests for the BatchRunner (grouping, reuse, determinism, pooling)."""

import pytest

from repro.scenario.batch import BatchRunner, run_specs
from repro.scenario.pipeline import SolvePipeline
from repro.scenario.spec import ScenarioSpec

BASE = ScenarioSpec(
    name="batch-test", scale="small", num_users=200, num_uavs=5,
    seed=17, algorithm="approAlg", algorithm_params={"s": 2},
)

SHOOTOUT = [
    BASE,
    BASE.with_overrides(algorithm="MCS", algorithm_params={}),
    BASE.with_overrides(algorithm="GreedyAssign", algorithm_params={}),
    BASE.with_overrides(seed=18, algorithm="MCS", algorithm_params={}),
    BASE.with_overrides(seed=18, algorithm="maxThroughput",
                        algorithm_params={}),
]


class TestGrouping:
    def test_shared_scenarios_built_once(self):
        result = BatchRunner().run(SHOOTOUT)
        assert len(result.items) == 5
        assert result.groups == 2                  # seeds 17 and 18
        # Only groups containing a context-aware algorithm build a context:
        # seed 17 has approAlg, seed 18 has none.
        assert result.context_builds == 1

    def test_items_keep_submission_order(self):
        result = BatchRunner().run(SHOOTOUT)
        assert [item.index for item in result.items] == [0, 1, 2, 3, 4]
        assert [item.spec.algorithm for item in result.items] == [
            "approAlg", "MCS", "GreedyAssign", "MCS", "maxThroughput"
        ]

    def test_rejects_non_specs(self):
        with pytest.raises(TypeError, match="ScenarioSpec"):
            BatchRunner().run([BASE, "not-a-spec"])

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError, match="workers"):
            BatchRunner(workers=0)


class TestDeterminism:
    def test_batch_equals_sequential_pipeline_runs(self):
        """Batch results are identical to running every spec alone."""
        batch = BatchRunner().run(SHOOTOUT)
        pipeline = SolvePipeline()
        for item in batch.items:
            alone = pipeline.run(item.spec)
            assert item.record.served == alone.record.served
            assert item.deployment.placements == alone.deployment.placements
            assert item.deployment.assignment == alone.deployment.assignment

    def test_batch_is_repeatable(self):
        first = BatchRunner().run(SHOOTOUT)
        second = BatchRunner().run(SHOOTOUT)
        assert [i.served for i in first.items] == [
            i.served for i in second.items
        ]

    @pytest.mark.timeout_guard(120)
    def test_pooled_equals_sequential(self):
        sequential = BatchRunner(workers=1).run(SHOOTOUT)
        pooled = BatchRunner(workers=2).run(SHOOTOUT)
        for a, b in zip(sequential.items, pooled.items):
            assert a.index == b.index
            assert a.served == b.served
            assert a.deployment.placements == b.deployment.placements
            assert a.deployment.assignment == b.deployment.assignment


class TestFailureHandling:
    def test_strict_false_captures_per_spec_failure(self):
        # An unknown solver kwarg raises; strict=False keeps the batch
        # alive and records the failure on that spec alone.
        bad = BASE.with_overrides(algorithm_params={"bogus": True})
        runner = BatchRunner(pipeline=SolvePipeline(strict=False))
        result = runner.run([bad, BASE])
        statuses = [item.record.status for item in result.items]
        assert statuses[0] == "error"
        assert statuses[1] == "ok"

    def test_strict_true_propagates(self):
        bad = BASE.with_overrides(algorithm_params={"bogus": True})
        with pytest.raises(TypeError):
            BatchRunner().run([bad])


class TestConvenience:
    def test_run_specs_helper(self):
        result = run_specs(SHOOTOUT[:2])
        assert len(result.items) == 2
        assert result.total_served == sum(i.served for i in result.items)

    def test_to_text_summarises(self):
        text = BatchRunner().run(SHOOTOUT[:2]).to_text()
        assert "2 specs" in text
        assert "approAlg" in text and "MCS" in text


class TestEmptyBatches:
    """Regression: an empty spec list (or an all-resumed batch) used to
    reach ``ProcessPoolExecutor(max_workers=0)`` when ``workers > 1`` and
    crash; empty batches must never spin up a pool."""

    @pytest.mark.timeout_guard(30)
    def test_empty_specs_sequential(self):
        result = BatchRunner().run([])
        assert result.items == ()
        assert result.groups == 0
        assert result.context_builds == 0
        assert result.specs_skipped == 0

    @pytest.mark.timeout_guard(30)
    def test_empty_specs_with_workers(self):
        result = BatchRunner(workers=4).run([])
        assert result.items == ()
        assert result.groups == 0

    @pytest.mark.timeout_guard(120)
    def test_all_specs_resumed_skips_pool(self, tmp_path):
        specs = SHOOTOUT[:2]
        runner = BatchRunner(workers=4, checkpoint_dir=tmp_path)
        first = runner.run(specs)
        assert first.specs_skipped == 0
        # Second run with resume: everything rehydrates from the ledger,
        # zero groups remain -- must not build a zero-worker pool.
        resumed = BatchRunner(
            workers=4, checkpoint_dir=tmp_path, resume=True
        ).run(specs)
        assert resumed.specs_skipped == 2
        assert resumed.groups == 0
        assert [i.served for i in resumed.items] == [
            i.served for i in first.items
        ]
        assert all(i.resumed for i in resumed.items)

    @pytest.mark.timeout_guard(30)
    def test_run_pooled_direct_empty_groups(self):
        assert BatchRunner(workers=4)._run_pooled([], None) == []
