"""Tests for the ASCII renderer."""

import pytest

from repro.core.approx import appro_alg
from repro.sim.render import ascii_map
from tests.conftest import make_line_instance


class TestAsciiMap:
    def test_dimensions(self):
        problem = make_line_instance()
        out = ascii_map(problem, cols=20, rows=5)
        lines = out.splitlines()
        assert len(lines) == 6  # 5 rows + legend
        assert all(len(line) == 20 for line in lines[:5])

    def test_marks_locations_and_users(self):
        problem = make_line_instance()
        out = ascii_map(problem, cols=30, rows=3)
        assert "+" in out       # free hovering locations
        assert any(ch.isdigit() for ch in out)  # user density

    def test_marks_deployment(self):
        problem = make_line_instance()
        result = appro_alg(problem, s=2)
        out = ascii_map(problem, result.deployment, cols=30, rows=3)
        assert out.count("U") == len(
            set(result.deployment.locations_used())
        ) or "U" in out  # overlapping cells may merge markers

    def test_rejects_bad_size(self):
        problem = make_line_instance()
        with pytest.raises(ValueError):
            ascii_map(problem, cols=0, rows=5)

    def test_density_scale_capped_at_9(self):
        problem = make_line_instance(num_locations=2, users_per_location=25,
                                     capacities=(5, 5))
        out = ascii_map(problem, cols=10, rows=2)
        for ch in out.splitlines()[0]:
            assert ch in ".U+0123456789"
