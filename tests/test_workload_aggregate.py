"""Unit tests for the demand-cell aggregation layer.

:func:`aggregate_users` must partition the user set deterministically;
every cell's padded geometry (centroid + radius, max member min-rate)
must dominate its members so the cell coverage test is conservative;
:func:`singleton_cells` must be the exact degenerate case the
bit-identity oracles rely on.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.network.users import users_from_points
from repro.workload.aggregate import (
    aggregate_problem,
    aggregate_users,
    singleton_cells,
)
from repro.workload.scenarios import paper_scenario


def _random_users(n: int, extent: float, seed: int):
    rng = np.random.default_rng(seed)
    xy = rng.uniform(0.0, extent, size=(n, 2))
    return users_from_points([(float(x), float(y)) for x, y in xy])


class TestAggregateUsers:
    def test_partition_and_demand_conservation(self):
        users = _random_users(200, 2000.0, seed=1)
        cells = aggregate_users(users, 150.0)
        seen: list = []
        for cell in cells:
            assert cell.demand == len(cell.members)
            assert list(cell.members) == sorted(cell.members)
            seen.extend(cell.members)
        assert sorted(seen) == list(range(200))

    def test_cells_indexed_contiguously(self):
        users = _random_users(80, 1200.0, seed=2)
        cells = aggregate_users(users, 100.0)
        assert [c.index for c in cells] == list(range(len(cells)))

    def test_deterministic(self):
        users = _random_users(120, 1500.0, seed=3)
        assert aggregate_users(users, 200.0) == aggregate_users(users, 200.0)

    def test_radius_bounds_member_distance(self):
        users = _random_users(150, 1800.0, seed=4)
        for cell in aggregate_users(users, 250.0):
            for i in cell.members:
                p = users[i].position
                d = math.hypot(p.x - cell.x, p.y - cell.y)
                assert d <= cell.radius_m + 1e-9

    def test_min_rate_is_most_demanding_member(self):
        users = _random_users(60, 800.0, seed=5)
        users = [
            type(u)(position=u.position,
                    min_rate_bps=u.min_rate_bps * (1.0 + 0.01 * (i % 7)))
            for i, u in enumerate(users)
        ]
        for cell in aggregate_users(users, 300.0):
            member_rates = [users[i].min_rate_bps for i in cell.members]
            assert cell.min_rate_bps == max(member_rates)

    def test_rejects_non_positive_cell_size(self):
        users = _random_users(5, 100.0, seed=6)
        with pytest.raises(ValueError):
            aggregate_users(users, 0.0)


class TestSingletonCells:
    def test_one_cell_per_user_zero_radius(self):
        users = _random_users(40, 600.0, seed=7)
        cells = singleton_cells(users)
        assert len(cells) == len(users)
        for i, cell in enumerate(cells):
            assert cell.index == i
            assert cell.members == (i,)
            assert cell.demand == 1
            assert cell.radius_m == 0.0
            p = users[i].position
            assert cell.x == p.x and cell.y == p.y
            assert cell.min_rate_bps == users[i].min_rate_bps


class TestCellCoverageGraph:
    def test_padded_coverage_is_conservative(self):
        """Every member of a coverable cell is individually coverable by
        the same UAV from the same location in the per-user graph."""
        problem = paper_scenario(num_users=150, num_uavs=4, scale="small",
                                 seed=11)
        cell_problem = aggregate_problem(problem, 200.0)
        base, agg = problem.graph, cell_problem.graph
        uav = problem.fleet[0]
        for v in range(problem.num_locations):
            per_user = set(base.coverable_users(v, uav))
            for c in agg.coverable_users(v, uav):
                assert set(agg.cells[c].members) <= per_user

    def test_coverage_weight_counts_demand_units(self):
        problem = paper_scenario(num_users=100, num_uavs=3, scale="small",
                                 seed=12)
        cell_problem = aggregate_problem(problem, 250.0)
        graph = cell_problem.graph
        uav = problem.fleet[0]
        for v in range(problem.num_locations):
            expected = sum(
                int(graph.cell_demands[c])
                for c in graph.coverable_users(v, uav)
            )
            assert graph.coverage_weight(v, uav) == expected

    def test_total_demand(self):
        problem = paper_scenario(num_users=90, num_uavs=3, scale="small",
                                 seed=13)
        cell_problem = aggregate_problem(problem, 150.0)
        assert cell_problem.graph.total_demand == 90


class TestAggregateProblem:
    def test_preserves_fleet_and_locations(self):
        problem = paper_scenario(num_users=70, num_uavs=3, scale="small",
                                 seed=14)
        cell_problem = aggregate_problem(problem, 180.0)
        assert cell_problem.fleet == problem.fleet
        assert cell_problem.graph.locations == problem.graph.locations
        assert cell_problem.graph.uav_range_m == problem.graph.uav_range_m

    def test_none_cell_size_builds_singletons(self):
        problem = paper_scenario(num_users=50, num_uavs=2, scale="small",
                                 seed=15)
        cell_problem = aggregate_problem(problem)
        demands = cell_problem.graph.cell_demands
        assert demands.size == 50
        assert int(demands.max()) == 1

    def test_singleton_coverage_matches_per_user_exactly(self):
        """The degenerate graph's coverable sets coincide with the base
        graph's for every (location, uav) pair — the geometric half of
        the bit-identity guarantee."""
        problem = paper_scenario(num_users=120, num_uavs=4, scale="small",
                                 seed=16)
        agg = aggregate_problem(problem).graph
        base = problem.graph
        for uav in problem.fleet:
            for v in range(problem.num_locations):
                assert list(agg.coverable_users(v, uav)) == list(
                    base.coverable_users(v, uav)
                )
