"""Tests for the solver watchdog (fallback chain, budgets) and the
non-strict runner path."""

import pytest

from repro.network.deployment import Deployment
from repro.sim.results import RunRecord
from repro.sim.runner import (
    ALGORITHMS,
    DEFAULT_FALLBACK_CHAIN,
    WatchdogConfig,
    run_algorithm,
    solve_with_fallback,
)
from repro.workload.scenarios import paper_scenario


@pytest.fixture(scope="module")
def tiny():
    return paper_scenario(num_users=120, num_uavs=4, scale="small", seed=2)


@pytest.fixture
def broken_registry(monkeypatch):
    """Registry helpers for injecting misbehaving solvers."""

    def register(name, fn):
        monkeypatch.setitem(ALGORITHMS, name, fn)

    return register


class TestRunAlgorithmStrict:
    def test_default_still_raises_on_solver_error(self, tiny, broken_registry):
        def boom(problem, **kw):
            raise RuntimeError("solver exploded")

        broken_registry("Boom", boom)
        with pytest.raises(RuntimeError, match="exploded"):
            run_algorithm(tiny, "Boom")

    def test_non_strict_captures_solver_error(self, tiny, broken_registry):
        def boom(problem, **kw):
            raise RuntimeError("solver exploded")

        broken_registry("Boom", boom)
        rec = run_algorithm(tiny, "Boom", strict=False)
        assert isinstance(rec, RunRecord)
        assert rec.status == "error" and not rec.ok
        assert "exploded" in rec.error
        assert rec.served == 0

    def test_non_strict_captures_invalid_deployment(
        self, tiny, broken_registry
    ):
        def disconnected(problem, **kw):
            # Two far-apart locations: structurally a deployment, but it
            # violates the connectivity constraint.
            locs = [0, problem.num_locations - 1]
            return Deployment(placements={0: locs[0], 1: locs[1]})

        broken_registry("Splitter", disconnected)
        rec = run_algorithm(tiny, "Splitter", strict=False)
        assert rec.status == "invalid"
        assert "connected" in rec.error

    def test_non_strict_ok_run_is_plain_ok(self, tiny):
        rec = run_algorithm(tiny, "MCS", strict=False)
        assert rec.status == "ok" and rec.ok and rec.error is None

    def test_unknown_algorithm_still_raises(self, tiny):
        with pytest.raises(KeyError, match="known"):
            run_algorithm(tiny, "Oracle9000", strict=False)


class TestWatchdogConfig:
    def test_rejects_unknown_chain_entry(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            WatchdogConfig(chain=("approAlg", "Oracle9000"))

    def test_rejects_empty_chain(self):
        with pytest.raises(ValueError, match="at least one"):
            WatchdogConfig(chain=())

    def test_rejects_negative_budget(self):
        with pytest.raises(ValueError, match="budget"):
            WatchdogConfig(budget_s=-1.0)


class TestSolveWithFallback:
    def test_first_tier_answers_with_no_budget(self, tiny):
        result = solve_with_fallback(
            tiny,
            WatchdogConfig(params={"approAlg": {"s": 2, "gain_mode": "fast"}}),
        )
        assert result.ok
        assert result.answered_by == "approAlg"
        assert [a.status for a in result.record.attempts] == ["ok"]
        assert result.record.status == "ok"
        assert result.record.served == result.deployment.served_count

    def test_tiny_budget_falls_back_without_raising(self, tiny):
        result = solve_with_fallback(
            tiny,
            WatchdogConfig(
                budget_s=1e-9,
                params={"approAlg": {"s": 2, "gain_mode": "fast"}},
            ),
        )
        assert result.ok, "last tier must answer even with no budget left"
        assert result.answered_by == DEFAULT_FALLBACK_CHAIN[-1]
        statuses = {a.algorithm: a.status for a in result.record.attempts}
        assert statuses["approAlg"] == "timeout"
        assert statuses[DEFAULT_FALLBACK_CHAIN[-1]] == "ok"

    def test_error_tier_falls_through(self, tiny, broken_registry):
        def boom(problem, **kw):
            raise RuntimeError("solver exploded")

        broken_registry("Boom", boom)
        result = solve_with_fallback(
            tiny, WatchdogConfig(chain=("Boom", "GreedyAssign"))
        )
        assert result.ok and result.answered_by == "GreedyAssign"
        assert result.record.attempts[0].status == "error"
        assert "exploded" in result.record.attempts[0].error

    def test_invalid_tier_falls_through(self, tiny, broken_registry):
        def disconnected(problem, **kw):
            return Deployment(
                placements={0: 0, 1: problem.num_locations - 1}
            )

        broken_registry("Splitter", disconnected)
        result = solve_with_fallback(
            tiny, WatchdogConfig(chain=("Splitter", "MCS"))
        )
        assert result.ok and result.answered_by == "MCS"
        assert result.record.attempts[0].status == "invalid"

    def test_all_tiers_failing_reports_failed_without_raising(
        self, tiny, broken_registry
    ):
        def boom(problem, **kw):
            raise RuntimeError("nope")

        broken_registry("Boom", boom)
        result = solve_with_fallback(tiny, WatchdogConfig(chain=("Boom",)))
        assert not result.ok
        assert result.deployment is None
        assert result.answered_by is None
        assert result.record.status == "failed"
        assert result.record.served == 0
        assert "Boom: error" in result.record.error

    def test_attempt_elapsed_times_recorded(self, tiny):
        result = solve_with_fallback(
            tiny,
            WatchdogConfig(params={"approAlg": {"s": 2, "gain_mode": "fast"}}),
        )
        assert all(a.elapsed_s >= 0.0 for a in result.record.attempts)
        assert result.record.runtime_s >= max(
            a.elapsed_s for a in result.record.attempts
        )

    def test_caller_progress_callback_still_invoked(self, tiny):
        calls = []
        result = solve_with_fallback(
            tiny,
            WatchdogConfig(
                budget_s=60.0,
                params={"approAlg": {
                    "s": 2, "gain_mode": "fast",
                    "progress": lambda done, total: calls.append(done),
                }},
            ),
        )
        assert result.ok
        assert calls, "user progress hook must still fire under a budget"
