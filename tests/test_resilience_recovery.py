"""Crash-safety guarantees, end to end: chaos-killed workers, poison
chunks, checkpoint/resume and graceful SIGINT drain all yield results
bit-identical to the undisturbed serial loop."""

from __future__ import annotations

import json
import os
import signal

import pytest

from repro import obs
from repro.core.approx import appro_alg
from repro.core.checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_KIND,
    CheckpointConfig,
)
from repro.core.dispatch import FaultPolicy
from repro.ops.chaos import ChaosSpec
from repro.util.interrupt import (
    SolveInterrupted,
    clear_interrupt,
    graceful_shutdown,
    request_interrupt,
)
from repro.workload.scenarios import paper_scenario

SEEDS = [1, 3, 8]

#: No backoff sleeps in tests: retry semantics are what's under test.
FAST = FaultPolicy(backoff_initial_s=0.0, backoff_max_s=0.0)


def _problem(seed, users=130, uavs=4):
    return paper_scenario(
        num_users=users, num_uavs=uavs, scale="small", seed=seed
    )


def _same(a, b):
    assert a.served == b.served
    assert a.anchors == b.anchors
    assert a.deployment.placements == b.deployment.placements
    assert a.deployment.assignment == b.deployment.assignment
    assert a.stats.subsets_total == b.stats.subsets_total


# -- chaos: the sweep survives any worker failure pattern --------------------


@pytest.mark.timeout_guard(180)
@pytest.mark.parametrize("seed", SEEDS)
def test_killed_worker_bit_identical_to_serial(seed):
    problem = _problem(seed)
    serial = appro_alg(problem, s=2)
    chaotic = appro_alg(
        problem, s=2, workers=2, chaos=ChaosSpec.kills(1), policy=FAST
    )
    _same(chaotic, serial)
    assert chaotic.stats.pool_respawns >= 1
    assert chaotic.stats.retries >= 1
    assert chaotic.stats.chunks_redispatched >= 1


@pytest.mark.timeout_guard(180)
def test_raised_chunk_bit_identical_to_serial():
    problem = _problem(3)
    serial = appro_alg(problem, s=2)
    chaotic = appro_alg(
        problem, s=2, workers=2, chaos=ChaosSpec.raises(0, 2), policy=FAST
    )
    _same(chaotic, serial)
    assert chaotic.stats.retries >= 2
    assert chaotic.stats.pool_respawns == 0, "a raise must not kill the pool"


@pytest.mark.timeout_guard(180)
def test_poison_chunk_quarantined_matches_serial():
    problem = _problem(1)
    serial = appro_alg(problem, s=2)
    policy = FaultPolicy(
        max_attempts=2, backoff_initial_s=0.0, backoff_max_s=0.0
    )
    chaotic = appro_alg(
        problem, s=2, workers=2, chaos=ChaosSpec.poison(1), policy=policy
    )
    _same(chaotic, serial)
    assert chaotic.stats.chunks_quarantined >= 1


@pytest.mark.timeout_guard(180)
def test_random_chaos_spec_bit_identical():
    problem = _problem(8)
    serial = appro_alg(problem, s=2)
    spec = ChaosSpec.random(
        num_chunks=4, seed=5, kills=1, raises=1, delays=1, delay_s=0.01
    )
    chaotic = appro_alg(problem, s=2, workers=2, chaos=spec, policy=FAST)
    _same(chaotic, serial)
    assert chaotic.stats.retries >= 1


# -- checkpoint / resume -----------------------------------------------------


def _interrupt_partway(fraction=3):
    """A progress hook requesting a graceful drain a third of the way in."""
    def hook(done, total):
        if done >= max(1, total // fraction):
            request_interrupt()
    return hook


@pytest.mark.parametrize("seed", range(10))
def test_serial_interrupt_then_resume_is_equivalent(tmp_path, seed):
    """The acceptance property, on 10 seeded specs: kill at a boundary,
    resume, land on the bit-identical final assignment."""
    problem = _problem(seed, users=110 + 7 * seed)
    baseline = appro_alg(problem, s=2)
    path = tmp_path / "ck.json"
    try:
        with pytest.raises(SolveInterrupted) as excinfo:
            appro_alg(
                problem, s=2, progress=_interrupt_partway(),
                checkpoint=CheckpointConfig(path=path, every_subsets=8),
            )
    finally:
        clear_interrupt()
    assert excinfo.value.checkpoint_path == path
    assert excinfo.value.partial["done"] < excinfo.value.partial["total"]

    resumed = appro_alg(
        problem, s=2,
        checkpoint=CheckpointConfig(path=path, resume=True, every_subsets=8),
    )
    _same(resumed, baseline)
    assert resumed.stats.resume_subsets_skipped > 0


@pytest.mark.timeout_guard(180)
def test_parallel_interrupt_then_resume_counts_skipped_chunks(tmp_path):
    problem = _problem(3, users=150, uavs=5)
    baseline = appro_alg(problem, s=2)
    path = tmp_path / "ck.json"
    try:
        with pytest.raises(SolveInterrupted):
            appro_alg(
                problem, s=2, workers=2, progress=_interrupt_partway(),
                checkpoint=CheckpointConfig(path=path),
            )
    finally:
        clear_interrupt()

    obs.reset()
    obs.enable()
    try:
        resumed = appro_alg(
            problem, s=2, workers=2,
            checkpoint=CheckpointConfig(path=path, resume=True),
        )
        counters = obs.metrics_snapshot().get("counters", {})
    finally:
        obs.disable()
        obs.reset()
    _same(resumed, baseline)
    assert resumed.stats.resume_chunks_skipped > 0
    assert counters.get("resume.chunks_skipped", 0) > 0
    assert counters.get("checkpoint.resumes", 0) >= 1


@pytest.mark.timeout_guard(180)
def test_resume_across_different_worker_counts(tmp_path):
    """Worker count is deliberately outside the checkpoint identity: a
    snapshot from a 2-worker run resumes under 3 workers (same index
    domain), still bit-identical."""
    problem = _problem(1, users=150, uavs=5)
    baseline = appro_alg(problem, s=2)
    path = tmp_path / "ck.json"
    try:
        with pytest.raises(SolveInterrupted):
            appro_alg(
                problem, s=2, workers=2, progress=_interrupt_partway(),
                checkpoint=CheckpointConfig(path=path),
            )
    finally:
        clear_interrupt()
    resumed = appro_alg(
        problem, s=2, workers=3,
        checkpoint=CheckpointConfig(path=path, resume=True),
    )
    _same(resumed, baseline)


def test_completed_checkpoint_short_circuits(tmp_path):
    problem = _problem(8)
    path = tmp_path / "ck.json"
    first = appro_alg(
        problem, s=2, checkpoint=CheckpointConfig(path=path)
    )
    assert first.stats.checkpoint_writes > 0
    again = appro_alg(
        problem, s=2, checkpoint=CheckpointConfig(path=path, resume=True)
    )
    _same(again, first)
    assert again.stats.resume_subsets_skipped > 0
    assert again.stats.subsets_evaluated == first.stats.subsets_evaluated


def test_stale_checkpoint_is_ignored_and_overwritten(tmp_path):
    path = tmp_path / "ck.json"
    problem_a = _problem(1)
    problem_b = _problem(1, users=140)       # different work identity
    appro_alg(problem_a, s=2, checkpoint=CheckpointConfig(path=path))
    result = appro_alg(
        problem_b, s=2, checkpoint=CheckpointConfig(path=path, resume=True)
    )
    baseline = appro_alg(problem_b, s=2)
    _same(result, baseline)
    assert result.stats.resume_subsets_skipped == 0
    # The file now records the new run, completed.
    payload = json.loads(path.read_text())
    assert payload["complete"] is True


# -- graceful SIGINT drain ---------------------------------------------------


@pytest.mark.timeout_guard(120)
def test_sigint_drain_emits_valid_checkpoint(tmp_path):
    """A real SIGINT under graceful_shutdown: the solver flushes a loadable
    checkpoint and surfaces the partial state instead of dying mid-write."""
    problem = _problem(3, users=150, uavs=5)
    path = tmp_path / "ck.json"
    fired = []

    def send_sigint(done, total):
        if not fired and done >= max(1, total // 3):
            fired.append(done)
            os.kill(os.getpid(), signal.SIGINT)

    with graceful_shutdown():
        with pytest.raises(SolveInterrupted) as excinfo:
            appro_alg(
                problem, s=2, progress=send_sigint,
                checkpoint=CheckpointConfig(path=path, every_subsets=8),
            )
    assert excinfo.value.checkpoint_path == path
    payload = json.loads(path.read_text())
    assert payload["kind"] == CHECKPOINT_KIND
    assert payload["format"] == CHECKPOINT_FORMAT
    assert payload["completed"], "the drain must flush completed ranges"
    assert payload["complete"] is False

    baseline = appro_alg(problem, s=2)
    resumed = appro_alg(
        problem, s=2,
        checkpoint=CheckpointConfig(path=path, resume=True, every_subsets=8),
    )
    _same(resumed, baseline)


def test_interrupt_without_checkpoint_still_drains(tmp_path):
    problem = _problem(1)
    try:
        with pytest.raises(SolveInterrupted) as excinfo:
            appro_alg(problem, s=2, progress=_interrupt_partway())
    finally:
        clear_interrupt()
    assert excinfo.value.checkpoint_path is None
    assert excinfo.value.partial["best_served"] >= 0
