"""Failure-injection tests for the independent deployment validator: every
constraint of Section II-C must be caught when violated."""

import pytest

from repro.network.deployment import Deployment
from repro.network.validate import ValidationError, is_feasible, validate_deployment
from tests.conftest import make_line_instance


@pytest.fixture
def problem():
    return make_line_instance(
        num_locations=5, users_per_location=3, capacities=(3, 3, 3, 3, 3)
    )


class TestValidDeployments:
    def test_valid_passes(self, problem):
        dep = Deployment(
            placements={0: 0, 1: 1},
            assignment={0: 0, 1: 0, 2: 0, 3: 1, 4: 1, 5: 1},
        )
        validate_deployment(problem.graph, problem.fleet, dep)
        assert is_feasible(problem.graph, problem.fleet, dep)

    def test_empty_passes(self, problem):
        validate_deployment(problem.graph, problem.fleet, Deployment.empty())

    def test_single_uav_connected_trivially(self, problem):
        dep = Deployment(placements={2: 4}, assignment={})
        validate_deployment(problem.graph, problem.fleet, dep)


class TestViolations:
    def test_capacity_violation(self, problem):
        # Capacity 3 but 4 users assigned (location 0 covers only its own
        # 3 users, so use users 0-2 plus an in-range neighbour? location
        # coverage is disjoint: give UAV 0 capacity 2 instead).
        problem2 = make_line_instance(
            num_locations=5, users_per_location=3,
            capacities=(2, 3, 3, 3, 3),
        )
        dep = Deployment(placements={0: 0}, assignment={0: 0, 1: 0, 2: 0})
        with pytest.raises(ValidationError, match="capacity"):
            validate_deployment(problem2.graph, problem2.fleet, dep)

    def test_out_of_range_user(self, problem):
        # User 12 sits under location 4; assigning it to a UAV at
        # location 0 exceeds the 500 m radius.
        dep = Deployment(placements={0: 0}, assignment={12: 0})
        with pytest.raises(ValidationError, match="beyond"):
            validate_deployment(problem.graph, problem.fleet, dep)

    def test_disconnected_network(self, problem):
        # Locations 0 and 4 are 2 km apart (range 600 m) -> disconnected.
        dep = Deployment(placements={0: 0, 1: 4}, assignment={})
        with pytest.raises(ValidationError, match="connected"):
            validate_deployment(problem.graph, problem.fleet, dep)
        # And passes once connectivity is not required.
        validate_deployment(problem.graph, problem.fleet, dep,
                            require_connected=False)

    def test_bad_uav_index(self, problem):
        dep = Deployment(placements={42: 0}, assignment={})
        with pytest.raises(ValidationError, match="fleet"):
            validate_deployment(problem.graph, problem.fleet, dep)

    def test_bad_location_index(self, problem):
        dep = Deployment(placements={0: 42}, assignment={})
        with pytest.raises(ValidationError, match="location"):
            validate_deployment(problem.graph, problem.fleet, dep)

    def test_bad_user_index(self, problem):
        dep = Deployment(placements={0: 0}, assignment={999: 0})
        with pytest.raises(ValidationError, match="user index"):
            validate_deployment(problem.graph, problem.fleet, dep)

    def test_rate_violation(self):
        """A user with an enormous min-rate requirement cannot be served
        even in range."""
        from repro.network.coverage import CoverageGraph
        from repro.network.users import users_from_points

        base = make_line_instance(num_locations=2, users_per_location=1,
                                  capacities=(2, 2))
        users = users_from_points([(500.0, 0.0)], min_rate_bps=1e15)
        graph = CoverageGraph(users=users, locations=base.graph.locations,
                              uav_range_m=600.0)
        dep = Deployment(placements={0: 0}, assignment={0: 0})
        with pytest.raises(ValidationError, match="below"):
            validate_deployment(graph, base.fleet, dep)

    def test_is_feasible_false_on_violation(self, problem):
        dep = Deployment(placements={0: 0, 1: 4}, assignment={})
        assert not is_feasible(problem.graph, problem.fleet, dep)

    def test_assignment_to_unplaced_uav(self, problem):
        """A corrupted deployment whose assignment references a UAV with no
        placement must fail validation, not leak a bare KeyError.
        Deployment's constructor rejects this, so corrupt one in place."""
        dep = Deployment(
            placements={0: 0, 1: 1}, assignment={0: 0, 3: 1}
        )
        del dep.placements[1]
        with pytest.raises(ValidationError, match="no.*placement"):
            validate_deployment(problem.graph, problem.fleet, dep)
        assert not is_feasible(problem.graph, problem.fleet, dep)

    def test_assignment_to_uav_outside_fleet(self, problem):
        """Same corruption, but the phantom UAV index is also outside the
        fleet: still a ValidationError (never IndexError)."""
        dep = Deployment(placements={0: 0, 99: 1}, assignment={0: 0, 3: 99})
        with pytest.raises(ValidationError):
            validate_deployment(problem.graph, problem.fleet, dep)
