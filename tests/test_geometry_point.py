"""Tests for repro.geometry.point."""


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.point import Point2D, Point3D, elevation_angle_deg

finite = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


class TestPoint2D:
    def test_distance_simple(self):
        assert Point2D(0, 0).distance_to(Point2D(3, 4)) == pytest.approx(5.0)

    def test_distance_self_is_zero(self):
        p = Point2D(7.5, -2.0)
        assert p.distance_to(p) == 0.0

    def test_at_altitude(self):
        p3 = Point2D(1.0, 2.0).at_altitude(300.0)
        assert p3 == Point3D(1.0, 2.0, 300.0)

    def test_iter_unpacks(self):
        x, y = Point2D(1.5, 2.5)
        assert (x, y) == (1.5, 2.5)

    @given(finite, finite, finite, finite)
    def test_distance_symmetry(self, x1, y1, x2, y2):
        a, b = Point2D(x1, y1), Point2D(x2, y2)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Point2D(0, 0).x = 1.0


class TestPoint3D:
    def test_distance_3d(self):
        assert Point3D(0, 0, 0).distance_to(Point3D(1, 2, 2)) == pytest.approx(3.0)

    def test_horizontal_distance_ignores_z(self):
        a = Point3D(0, 0, 0)
        b = Point3D(3, 4, 300)
        assert a.horizontal_distance_to(b) == pytest.approx(5.0)

    def test_ground_projection(self):
        assert Point3D(1, 2, 300).ground() == Point2D(1, 2)

    def test_default_altitude_zero(self):
        assert Point3D(1, 2).z == 0.0

    @given(finite, finite, finite, finite,
           st.floats(0, 1e4, allow_nan=False), st.floats(0, 1e4, allow_nan=False))
    def test_triangle_inequality(self, x1, y1, x2, y2, z1, z2):
        a = Point3D(x1, y1, z1)
        b = Point3D(x2, y2, z2)
        origin = Point3D(0, 0, 0)
        assert a.distance_to(b) <= (
            a.distance_to(origin) + origin.distance_to(b) + 1e-6
        )


class TestElevationAngle:
    def test_overhead_is_90(self):
        assert elevation_angle_deg(
            Point3D(5, 5, 0), Point3D(5, 5, 300)
        ) == pytest.approx(90.0)

    def test_45_degrees(self):
        assert elevation_angle_deg(
            Point3D(0, 0, 0), Point3D(300, 0, 300)
        ) == pytest.approx(45.0)

    def test_rejects_below(self):
        with pytest.raises(ValueError, match="above"):
            elevation_angle_deg(Point3D(0, 0, 100), Point3D(0, 0, 0))

    @given(st.floats(1.0, 1e5), st.floats(1.0, 1e5))
    def test_angle_in_range(self, horizontal, altitude):
        angle = elevation_angle_deg(
            Point3D(0, 0, 0), Point3D(horizontal, 0, altitude)
        )
        assert 0.0 < angle < 90.0

    def test_monotone_in_altitude(self):
        ground = Point3D(0, 0, 0)
        angles = [
            elevation_angle_deg(ground, Point3D(500, 0, h))
            for h in (50, 150, 300, 450)
        ]
        assert angles == sorted(angles)
