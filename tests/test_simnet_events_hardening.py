"""Hardening tests for :class:`repro.simnet.events.EventQueue`.

The queue's documented contract — ``(time, seq)`` ordering, FIFO among
same-timestamp events, cancellation tokens that never collide — is what
the mission runtime and the dynamics engine lean on for deterministic
replays.  These tests pin it, including randomized property checks that
race cancellations against bursts of same-timestamp events.
"""

import random

import pytest

from repro.simnet.events import EventQueue


def drain_all(queue):
    out = []
    while queue:
        out.append(queue.pop())
    return out


class TestTieBreak:
    def test_same_timestamp_pops_fifo(self):
        queue = EventQueue()
        for i in range(10):
            queue.schedule(5.0, f"e{i}")
        assert [p for _, p in drain_all(queue)] == [f"e{i}" for i in range(10)]

    def test_order_independent_of_payload(self):
        """Payloads never participate in ordering (they need not even be
        comparable with each other)."""
        queue = EventQueue()
        queue.schedule(1.0, ("tuple", 1))
        queue.schedule(1.0, "string")
        queue.schedule(1.0, 42)
        assert [p for _, p in drain_all(queue)] \
            == [("tuple", 1), "string", 42]

    def test_interleaved_times_sort_by_time_then_seq(self):
        queue = EventQueue()
        queue.schedule(2.0, "b1")
        queue.schedule(1.0, "a1")
        queue.schedule(2.0, "b2")
        queue.schedule(1.0, "a2")
        assert drain_all(queue) \
            == [(1.0, "a1"), (1.0, "a2"), (2.0, "b1"), (2.0, "b2")]


class TestCancellation:
    def test_cancel_middle_of_same_timestamp_burst(self):
        queue = EventQueue()
        tokens = [queue.schedule(3.0, f"e{i}") for i in range(5)]
        assert queue.cancel(tokens[2]) is True
        assert [p for _, p in drain_all(queue)] == ["e0", "e1", "e3", "e4"]

    def test_cancel_is_idempotent(self):
        queue = EventQueue()
        token = queue.schedule(1.0, "x")
        assert queue.cancel(token) is True
        assert queue.cancel(token) is False
        assert len(queue) == 0

    def test_cancel_popped_token_is_noop(self):
        queue = EventQueue()
        token = queue.schedule(1.0, "x")
        queue.pop()
        assert queue.cancel(token) is False

    def test_cancel_unknown_token(self):
        queue = EventQueue()
        queue.schedule(1.0, "x")
        assert queue.cancel(999) is False
        assert len(queue) == 1

    def test_len_accounts_for_cancellations(self):
        queue = EventQueue()
        tokens = [queue.schedule(1.0, i) for i in range(4)]
        queue.cancel(tokens[0])
        queue.cancel(tokens[3])
        assert len(queue) == 2
        assert bool(queue) is True

    def test_peek_skips_cancelled_head(self):
        queue = EventQueue()
        first = queue.schedule(1.0, "head")
        queue.schedule(2.0, "next")
        queue.cancel(first)
        assert queue.peek_time() == 2.0

    def test_cancelled_head_does_not_advance_clock(self):
        queue = EventQueue()
        first = queue.schedule(1.0, "head")
        queue.schedule(5.0, "live")
        queue.cancel(first)
        assert queue.pop() == (5.0, "live")
        assert queue.now == 5.0


class TestClockGuards:
    def test_rejects_scheduling_into_the_past(self):
        queue = EventQueue()
        queue.schedule(10.0, "x")
        queue.pop()
        with pytest.raises(ValueError, match="past"):
            queue.schedule(5.0, "late")

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError, match="non-negative"):
            EventQueue().schedule_in(-1.0, "x")

    def test_drain_respects_until(self):
        queue = EventQueue()
        for t in (1.0, 2.0, 3.0):
            queue.schedule(t, t)
        seen = list(queue.drain(until=2.0))
        assert [t for t, _ in seen] == [1.0, 2.0]
        # The event beyond the horizon stays scheduled.
        assert len(queue) == 1
        assert queue.peek_time() == 3.0

    def test_drain_picks_up_mid_iteration_schedules(self):
        queue = EventQueue()
        queue.schedule(1.0, "seed")
        seen = []
        for t, payload in queue.drain(until=3.0):
            seen.append((t, payload))
            if payload == "seed":
                queue.schedule(2.0, "child")
        assert seen == [(1.0, "seed"), (2.0, "child")]


class TestRandomizedProperties:
    """Race random cancellations against same-timestamp bursts and check
    the queue against a reference model (a sorted list)."""

    @pytest.mark.parametrize("seed", range(20))
    def test_matches_reference_model(self, seed):
        rng = random.Random(seed)
        queue = EventQueue()
        # Few distinct times -> many deliberate timestamp collisions.
        times = [float(rng.randint(0, 5)) for _ in range(60)]
        tokens = {}
        for i, t in enumerate(times):
            tokens[queue.schedule(t, i)] = (t, i)
        cancelled = set()
        for token in rng.sample(list(tokens), k=25):
            assert queue.cancel(token) is (token not in cancelled)
            cancelled.add(token)
        live = [
            (t, i) for token, (t, i) in tokens.items()
            if token not in cancelled
        ]
        # Reference order: time, then insertion order.  Payload i here IS
        # the insertion order, so the model is a plain stable sort.
        live.sort()
        assert len(queue) == len(live)
        assert drain_all(queue) == live

    @pytest.mark.parametrize("seed", range(10))
    def test_cancel_during_drain(self, seed):
        """Handlers cancelling later same-timestamp events mid-drain see
        those events skipped, and everything else keeps FIFO order."""
        rng = random.Random(seed)
        queue = EventQueue()
        tokens = [queue.schedule(float(i // 4), i) for i in range(40)]
        victims = {}
        for i in range(0, 40, 7):
            # Event i cancels a later event when it fires.
            victims[i] = rng.randrange(i + 1, 41)
        seen = []
        expected_skipped = set()
        for _, payload in queue.drain():
            seen.append(payload)
            target = victims.get(payload)
            if target is not None and target < 40:
                if queue.cancel(tokens[target]):
                    expected_skipped.add(target)
        assert seen == [
            i for i in range(40) if i not in expected_skipped
        ]
