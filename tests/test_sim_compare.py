"""Tests for the paired statistical comparison."""


import numpy as np
import pytest
from scipy import stats

from repro.sim.compare import (
    _binomial_two_sided_p,
    _sign_flip_permutation_p,
    compare_algorithms,
)


class TestSignTest:
    def test_matches_scipy_binomtest(self):
        for wins, trials in ((8, 10), (5, 10), (10, 10), (0, 7), (3, 4)):
            ours = _binomial_two_sided_p(wins, trials)
            theirs = stats.binomtest(wins, trials, 0.5,
                                     alternative="two-sided").pvalue
            assert ours == pytest.approx(theirs, rel=1e-9), (wins, trials)

    def test_no_trials(self):
        assert _binomial_two_sided_p(0, 0) == 1.0

    def test_even_split_is_one(self):
        assert _binomial_two_sided_p(5, 10) == pytest.approx(1.0)


class TestPermutationTest:
    def test_all_zero_diffs(self):
        rng = np.random.default_rng(0)
        assert _sign_flip_permutation_p([0, 0, 0], 100, rng) == 1.0

    def test_strong_effect_small_p(self):
        rng = np.random.default_rng(0)
        diffs = [10.0] * 12  # every pair favours A by the same margin
        p = _sign_flip_permutation_p(diffs, 5000, rng)
        assert p < 0.01

    def test_null_effect_large_p(self):
        rng = np.random.default_rng(0)
        diffs = [3.0, -3.0, 2.0, -2.0, 1.0, -1.0]
        p = _sign_flip_permutation_p(diffs, 5000, rng)
        assert p > 0.4


class TestCompareAlgorithms:
    def test_appro_vs_random(self):
        """approAlg vs the random baseline: the win must be decisive."""
        result = compare_algorithms(
            "approAlg",
            "RandomConnected",
            repetitions=6,
            num_users=200,
            num_uavs=5,
            scale="small",
            seed=3,
            params_a={"s": 2, "gain_mode": "fast",
                      "max_anchor_candidates": 6},
            # RandomConnected draws fresh entropy when unseeded, which
            # makes the win count flaky; pin it.
            params_b={"seed": 7},
        )
        assert result.n == 6
        assert result.wins_a == 6
        assert result.mean_diff > 0
        assert result.sign_test_p < 0.05
        assert result.permutation_p < 0.05

    def test_self_comparison_is_null(self):
        result = compare_algorithms(
            "MCS",
            "MCS",
            repetitions=5,
            num_users=150,
            num_uavs=4,
            scale="small",
            seed=9,
        )
        assert result.ties == 5
        assert result.mean_diff == 0.0
        assert result.sign_test_p == 1.0
        assert result.permutation_p == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            compare_algorithms("MCS", "MCS", repetitions=0)
