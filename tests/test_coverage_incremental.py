"""Incremental coverage updates and batched coverage bitsets.

The dynamic engine's warm path depends on two equivalences pinned here:

* ``SolverContext.updated`` (hop matrix reused, user bitsets rebuilt) is
  bit-identical to a cold ``from_problem`` on an equivalent graph;
* the batched all-locations coverage mask (``coverage_bits_matrix``) is
  bit-identical to stacking the per-location ``coverable_bits`` path.
"""

import numpy as np
import pytest

from repro.core.context import SolverContext
from repro.core.problem import ProblemInstance
from repro.geometry.point import Point3D
from repro.network.coverage import CoverageGraph
from repro.network.users import User
from repro.scenario.spec import ScenarioSpec
from repro.workload.aggregate import aggregate_problem


def build_problem(seed=3, num_users=60, num_uavs=4):
    return ScenarioSpec(
        name="inc", scale="small", num_users=num_users, num_uavs=num_uavs,
        seed=seed,
    ).build()


def fresh_graph(graph, users):
    return CoverageGraph(
        users=list(users), locations=graph.locations,
        uav_range_m=graph.uav_range_m, channel=graph.channel,
        bandwidth_hz=graph.bandwidth_hz,
    )


def shuffled_users(graph, seed):
    rng = np.random.default_rng(seed)
    lo, hi = graph.locations[0], graph.locations[-1]
    span = max(abs(hi.x - lo.x), 1000.0)
    return [
        User(
            Point3D(float(rng.uniform(0, span)),
                    float(rng.uniform(0, span)), 0.0),
            u.min_rate_bps,
        )
        for u in graph.users
    ]


def assert_contexts_identical(a, b):
    assert a.radio_keys == b.radio_keys
    assert a.fleet_radio_index == b.fleet_radio_index
    assert a.capacities == b.capacities
    assert a.num_users == b.num_users
    np.testing.assert_array_equal(a.hop_matrix, b.hop_matrix)
    np.testing.assert_array_equal(a.coverage_bits, b.coverage_bits)
    np.testing.assert_array_equal(a.coverage_counts, b.coverage_counts)
    np.testing.assert_array_equal(a.best_counts, b.best_counts)


class TestContextUpdated:
    def test_updated_matches_cold_rebuild(self):
        problem = build_problem()
        context = SolverContext.from_problem(problem)
        graph = problem.graph

        new_users = shuffled_users(graph, seed=9)
        warm_graph = graph.with_users(new_users)
        warm = context.updated(
            ProblemInstance(graph=warm_graph, fleet=problem.fleet)
        )
        cold = SolverContext.from_problem(ProblemInstance(
            graph=fresh_graph(graph, new_users), fleet=problem.fleet
        ))
        assert_contexts_identical(warm, cold)

    def test_updated_with_fewer_users(self):
        problem = build_problem()
        context = SolverContext.from_problem(problem)
        graph = problem.graph
        kept = graph.users[::3]
        warm = context.updated(ProblemInstance(
            graph=graph.with_users(kept), fleet=problem.fleet
        ))
        cold = SolverContext.from_problem(ProblemInstance(
            graph=fresh_graph(graph, kept), fleet=problem.fleet
        ))
        assert_contexts_identical(warm, cold)

    def test_updated_rejects_changed_locations(self):
        problem = build_problem()
        context = SolverContext.from_problem(problem)
        graph = problem.graph
        smaller = CoverageGraph(
            users=graph.users, locations=graph.locations[:-1],
            uav_range_m=graph.uav_range_m, channel=graph.channel,
            bandwidth_hz=graph.bandwidth_hz,
        )
        with pytest.raises(ValueError, match="locations"):
            context.updated(
                ProblemInstance(graph=smaller, fleet=problem.fleet)
            )


class TestUserMutation:
    def test_replace_users_invalidates_coverage_only(self):
        problem = build_problem()
        graph = problem.graph
        hop_before = graph.hop_matrix()
        uav = problem.fleet[0]
        before = graph.coverable_users(0, uav)
        graph.replace_users(shuffled_users(graph, seed=4))
        assert graph.hop_matrix() is hop_before
        after = graph.coverable_users(0, uav)
        reference = fresh_graph(graph, graph.users).coverable_users(0, uav)
        assert after == reference
        assert isinstance(before, list)

    def test_move_users_matches_rebuilt_users(self):
        problem = build_problem()
        graph = problem.graph
        rng = np.random.default_rng(8)
        xy = graph._user_xy + rng.normal(
            scale=40.0, size=(len(graph.users), 2)
        )
        graph.move_users(xy)
        np.testing.assert_allclose(graph._user_xy, xy)
        uav = problem.fleet[0]
        reference = fresh_graph(graph, graph.users)
        for v in (0, len(graph.locations) // 2, len(graph.locations) - 1):
            assert graph.coverable_users(v, uav) \
                == reference.coverable_users(v, uav)

    def test_move_users_rejects_shape_mismatch(self):
        graph = build_problem().graph
        with pytest.raises(ValueError, match="shape"):
            graph.move_users(np.zeros((3, 2)))

    def test_with_users_shares_location_structure(self):
        problem = build_problem()
        graph = problem.graph
        hop = graph.hop_matrix()
        clone = graph.with_users(graph.users[:10])
        assert clone.location_graph is graph.location_graph
        assert clone.hop_matrix() is hop
        assert clone.num_users == 10
        # The original is untouched.
        assert graph.num_users == 60


class TestBatchedBits:
    def test_matrix_matches_per_location_bits(self):
        problem = build_problem(seed=5, num_uavs=6)
        graph = problem.graph
        reference = fresh_graph(graph, graph.users)
        for uav in problem.fleet:
            matrix = graph.coverage_bits_matrix(uav)
            stacked = np.stack([
                reference.coverable_bits(v, uav)
                for v in range(graph.num_locations)
            ])
            np.testing.assert_array_equal(matrix, stacked)

    def test_matrix_seeds_per_location_caches(self):
        problem = build_problem()
        graph = problem.graph
        uav = problem.fleet[0]
        graph.coverage_bits_matrix(uav)
        reference = fresh_graph(graph, graph.users)
        for v in (0, 7, graph.num_locations - 1):
            assert graph.coverable_users(v, uav) \
                == reference.coverable_users(v, uav)

    def test_fallback_path_identical(self):
        problem = build_problem()
        graph = problem.graph
        uav = problem.fleet[0]
        batched = graph.coverage_bits_matrix(uav)
        small = fresh_graph(graph, graph.users)
        small._BATCHED_COVERAGE = False
        np.testing.assert_array_equal(
            batched, small.coverage_bits_matrix(uav)
        )

    def test_cell_graph_uses_padded_fallback(self):
        problem = build_problem()
        cells = aggregate_problem(problem, cell_size_m=150.0)
        graph = cells.graph
        assert graph._BATCHED_COVERAGE is False
        uav = problem.fleet[0]
        matrix = graph.coverage_bits_matrix(uav)
        stacked = np.stack([
            graph.coverable_bits(v, uav)
            for v in range(graph.num_locations)
        ])
        np.testing.assert_array_equal(matrix, stacked)

    def test_empty_user_set(self):
        problem = build_problem()
        graph = problem.graph.with_users([])
        uav = problem.fleet[0]
        matrix = graph.coverage_bits_matrix(uav)
        assert matrix.shape[0] == graph.num_locations
        assert matrix.sum() == 0
