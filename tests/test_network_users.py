"""Tests for ground users."""

import pytest

from repro.geometry.point import Point2D, Point3D
from repro.network.users import DEFAULT_MIN_RATE_BPS, User, users_from_points


class TestUser:
    def test_defaults(self):
        u = User(Point3D(10.0, 20.0, 0.0))
        assert u.min_rate_bps == DEFAULT_MIN_RATE_BPS == 2_000.0
        assert u.ground == Point2D(10.0, 20.0)

    def test_rejects_airborne_users(self):
        with pytest.raises(ValueError, match="ground"):
            User(Point3D(0, 0, 10.0))

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            User(Point3D(0, 0, 0), min_rate_bps=-1.0)


class TestUsersFromPoints:
    def test_from_tuples(self):
        users = users_from_points([(1, 2), (3, 4)])
        assert len(users) == 2
        assert users[0].position == Point3D(1.0, 2.0, 0.0)

    def test_from_point2d(self):
        users = users_from_points([Point2D(5, 6)])
        assert users[0].position == Point3D(5.0, 6.0, 0.0)

    def test_custom_rate(self):
        users = users_from_points([(0, 0)], min_rate_bps=64_000.0)
        assert users[0].min_rate_bps == 64_000.0

    def test_empty(self):
        assert users_from_points([]) == []
